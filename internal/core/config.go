package core

import (
	"fmt"
	"sort"
	"strings"
)

// Config is an assignment of values to named tuning parameters — one point
// of the search space. During generation it doubles as the partial
// configuration visible to constraints: a constraint on the d-th parameter
// may read the values of parameters 0..d-1 (paper, Section II: "we use the
// tuning parameter WPT in the constraint of the tuning parameter LS").
//
// Config is backed by a dense slice indexed by parameter position plus a
// shared name index, so constraint evaluation does not allocate.
type Config struct {
	names  *nameIndex
	vals   []Value
	filled int // how many leading parameters are set (generation order)
	// onRead, when non-nil, observes every by-name read (position passed).
	// Tests use it to verify that a constraint's declared read footprint
	// covers what its predicate actually consults (see ObserveReads).
	onRead func(pos int)
}

// nameIndex maps parameter names to their position. It is shared by all
// configurations of a space.
type nameIndex struct {
	byName map[string]int
	names  []string
}

func newNameIndex(names []string) *nameIndex {
	ni := &nameIndex{byName: make(map[string]int, len(names)), names: append([]string(nil), names...)}
	for i, n := range names {
		if _, dup := ni.byName[n]; dup {
			panic(fmt.Sprintf("core: duplicate tuning parameter name %q", n))
		}
		ni.byName[n] = i
	}
	return ni
}

// NewConfig creates an empty configuration over the given parameter names.
func NewConfig(names []string) *Config {
	ni := newNameIndex(names)
	return &Config{names: ni, vals: make([]Value, len(names))}
}

// ConfigFromMap builds a complete configuration from a name→value map; the
// parameter order follows names. Missing names panic — configurations are
// produced by the framework, so a hole indicates a programming error.
func ConfigFromMap(names []string, m map[string]Value) *Config {
	c := NewConfig(names)
	for i, n := range names {
		v, ok := m[n]
		if !ok {
			panic(fmt.Sprintf("core: configuration missing parameter %q", n))
		}
		c.vals[i] = v
	}
	c.filled = len(names)
	return c
}

// Names returns the parameter names in declaration order.
func (c *Config) Names() []string { return c.names.names }

// Len returns the number of parameters.
func (c *Config) Len() int { return len(c.vals) }

// Filled returns how many leading parameters have been assigned. Complete
// configurations have Filled() == Len().
func (c *Config) Filled() int { return c.filled }

// set assigns the value at position i; generation fills positions in order.
func (c *Config) set(i int, v Value) {
	c.vals[i] = v
	if i+1 > c.filled {
		c.filled = i + 1
	} else if i+1 < c.filled {
		c.filled = i + 1
	}
}

// SetAt assigns the value at position i (declaration order). Positions
// must be filled in order; it exists for space-less tuners — such as the
// OpenTuner raw-space baseline — that construct configurations directly
// instead of drawing them from a generated Space.
func (c *Config) SetAt(i int, v Value) { c.set(i, v) }

// Value returns the value of the named parameter. Reading a parameter that
// is not yet assigned (e.g. a constraint referencing a *later* parameter)
// panics with a descriptive message, matching ATF's rule that constraints
// may only reference previously declared parameters.
func (c *Config) Value(name string) Value {
	i, ok := c.names.byName[name]
	if !ok {
		panic(fmt.Sprintf("core: unknown tuning parameter %q", name))
	}
	if i >= c.filled {
		panic(fmt.Sprintf("core: constraint references parameter %q before it is assigned; constraints may only use previously declared parameters of the same group", name))
	}
	if c.onRead != nil {
		c.onRead(i)
	}
	return c.vals[i]
}

// ObserveReads installs a hook called with the position of every successful
// by-name read (Value and its typed variants). Pass nil to remove. Intended
// for tests that check declared constraint footprints against actual reads;
// generation never installs a hook.
func (c *Config) ObserveReads(fn func(pos int)) { c.onRead = fn }

// Has reports whether the named parameter exists and is assigned.
func (c *Config) Has(name string) bool {
	i, ok := c.names.byName[name]
	return ok && i < c.filled
}

// Int returns the named parameter's value as int64.
func (c *Config) Int(name string) int64 { return c.Value(name).Int() }

// Float returns the named parameter's value as float64.
func (c *Config) Float(name string) float64 { return c.Value(name).Float() }

// Bool returns the named parameter's value as bool.
func (c *Config) Bool(name string) bool { return c.Value(name).Bool() }

// Str returns the named parameter's value as string.
func (c *Config) Str(name string) string { return c.Value(name).Str() }

// At returns the value at position i (declaration order).
func (c *Config) At(i int) Value { return c.vals[i] }

// Clone returns an independent copy of the configuration.
func (c *Config) Clone() *Config {
	vals := append([]Value(nil), c.vals...)
	return &Config{names: c.names, vals: vals, filled: c.filled}
}

// Map returns the configuration as a name→value map (allocates; intended
// for reporting, not hot paths).
func (c *Config) Map() map[string]Value {
	m := make(map[string]Value, c.filled)
	for i := 0; i < c.filled; i++ {
		m[c.names.names[i]] = c.vals[i]
	}
	return m
}

// Defines renders the configuration as textual macro definitions, the form
// in which ATF's OpenCL cost function substitutes parameter values into
// kernel source via the preprocessor.
func (c *Config) Defines() map[string]string {
	m := make(map[string]string, c.filled)
	for i := 0; i < c.filled; i++ {
		v := c.vals[i]
		s := v.String()
		if v.Kind() == KindBool {
			// OpenCL C has no bool literals in macros; use 0/1.
			s = "0"
			if v.Bool() {
				s = "1"
			}
		}
		m[c.names.names[i]] = s
	}
	return m
}

// String renders the configuration deterministically (sorted by name).
func (c *Config) String() string {
	keys := append([]string(nil), c.names.names[:c.filled]...)
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", k, c.Value(k))
	}
	b.WriteByte('}')
	return b.String()
}

// Equal reports whether two complete configurations assign identical values.
func (c *Config) Equal(o *Config) bool {
	if c.Len() != o.Len() || c.filled != o.filled {
		return false
	}
	for i := 0; i < c.filled; i++ {
		if c.names.names[i] != o.names.names[i] || !c.vals[i].Equal(o.vals[i]) {
			return false
		}
	}
	return true
}

// Key returns a deterministic string key for caching cost evaluations.
func (c *Config) Key() string {
	var b strings.Builder
	for i := 0; i < c.filled; i++ {
		b.WriteString(c.vals[i].String())
		b.WriteByte('|')
	}
	return b.String()
}
