// Package cuda is a thin CUDA/NVRTC-flavoured facade over the same
// simulated machinery as package opencl. ATF's CUDA cost function "is used
// analogously to the ATF's OpenCL cost function, with the only difference
// that platform's name is omitted, because CUDA targets NVIDIA devices
// only" (paper, Section II) — this package reproduces exactly that shape:
// device selection by name within the NVIDIA catalog, runtime compilation
// with -D definitions (NVRTC), and launches described as grid×block.
package cuda

import (
	"fmt"
	"strings"

	"atf/internal/opencl"
	"atf/internal/perfmodel"
)

// Device is a CUDA-capable (NVIDIA) simulated device.
type Device struct {
	inner *opencl.Device
}

// FindDevice selects an NVIDIA device by name substring.
func FindDevice(name string) (*Device, error) {
	d, err := opencl.FindDevice("NVIDIA", name)
	if err != nil {
		return nil, fmt.Errorf("cuda: no NVIDIA device matching %q", name)
	}
	return &Device{inner: d}, nil
}

// Name returns the device name.
func (d *Device) Name() string { return d.inner.Name() }

// Desc exposes the device description.
func (d *Device) Desc() *perfmodel.Device { return d.inner.Desc }

// Context owns device memory.
type Context struct {
	ctx   *opencl.Context
	queue *opencl.Queue
}

// NewContext creates a CUDA context on the device.
func NewContext(d *Device) *Context {
	ctx := opencl.NewContext(d.inner)
	return &Context{ctx: ctx, queue: opencl.NewQueue(ctx)}
}

// Buffer is device memory (cudaMalloc analogue).
type Buffer = opencl.Buffer

// Malloc allocates an n-element float32 buffer.
func (c *Context) Malloc(n int) *Buffer { return c.ctx.CreateBuffer(n) }

// Module is an NVRTC-compiled module.
type Module struct {
	prog *opencl.Program
}

// CompileModule performs runtime compilation of CUDA-C-like source with
// macro definitions (the NVRTC path ATF uses). The oclc subset accepts the
// OpenCL spellings of the work-item builtins; kernels shared between the
// two facades simply use those.
func (c *Context) CompileModule(source string, defines map[string]string) (*Module, error) {
	p := c.ctx.CreateProgram(source)
	if err := p.Build(defines); err != nil {
		return nil, fmt.Errorf("cuda: nvrtc: %s", strings.TrimPrefix(err.Error(), "opencl: "))
	}
	return &Module{prog: p}, nil
}

// LaunchResult carries the profiling outcome of one launch.
type LaunchResult struct {
	Event *opencl.Event
}

// DurationNs returns the simulated kernel time (cudaEventElapsedTime
// analogue, in nanoseconds).
func (r *LaunchResult) DurationNs() float64 { return r.Event.DurationNs() }

// Launch runs kernel `name` with gridDim×blockDim (1-D) and the given
// arguments. CUDA's grid is specified in blocks; the OpenCL global size is
// therefore grid*block.
func (c *Context) Launch(m *Module, name string, gridDim, blockDim int64, args ...any) (*LaunchResult, error) {
	k, err := m.prog.CreateKernel(name)
	if err != nil {
		return nil, err
	}
	if err := k.SetArgs(args...); err != nil {
		return nil, err
	}
	ev, err := c.queue.EnqueueNDRange(k, []int64{gridDim * blockDim}, []int64{blockDim})
	if err != nil {
		return nil, err
	}
	return &LaunchResult{Event: ev}, nil
}

// Launch2D runs a 2-D grid of 2-D blocks.
func (c *Context) Launch2D(m *Module, name string, gridX, gridY, blockX, blockY int64, args ...any) (*LaunchResult, error) {
	k, err := m.prog.CreateKernel(name)
	if err != nil {
		return nil, err
	}
	if err := k.SetArgs(args...); err != nil {
		return nil, err
	}
	ev, err := c.queue.EnqueueNDRange(k,
		[]int64{gridX * blockX, gridY * blockY}, []int64{blockX, blockY})
	if err != nil {
		return nil, err
	}
	return &LaunchResult{Event: ev}, nil
}

// SetFunctional switches full (correctness) execution on or off.
func (c *Context) SetFunctional(v bool) { c.queue.Functional = v }
