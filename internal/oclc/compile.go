package oclc

import (
	"fmt"
	"time"

	"atf/internal/obs"
)

// Lowering metric (DESIGN.md §3c): wall-clock nanoseconds of one
// AST→bytecode lowering pass over a whole program. Observed once per
// Compile, i.e. once per (source, define-set) thanks to CompileCached.
var mCompileNs = obs.NewHistogram("atf_oclc_compile_ns",
	"Wall-clock nanoseconds of one AST-to-bytecode lowering (per define-set)",
	[]float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9})

// lower compiles every function of the program to define-specialized
// bytecode. Lowering is best-effort: if any function cannot be lowered
// the program keeps nil vm codes and Launch falls back to the
// tree-walking interpreter, so Compile never fails because of the VM.
func (p *Program) lower() {
	start := time.Now()
	lowerProgram(p, true)
	mCompileNs.Observe(float64(time.Since(start).Nanoseconds()))
}

// ensureNoSpec lazily lowers the unspecialized variant used by
// EngineVMNoSpec (the E11 ablation); most launches never need it.
func (p *Program) ensureNoSpec() {
	p.noSpecOnce.Do(func() { lowerProgram(p, false) })
}

// lowerProgram lowers all functions or none: opCallFn assumes its callee
// has a compiled body under the same variant.
func lowerProgram(p *Program, spec bool) {
	codes := make(map[*Function]*vmCode, len(p.Funcs))
	for _, fn := range p.Funcs {
		vc := lowerFunction(p, fn, spec)
		if vc == nil {
			return
		}
		codes[fn] = vc
	}
	for fn, vc := range codes {
		if spec {
			fn.vm = vc
		} else {
			fn.vmNoSpec = vc
		}
	}
}

func lowerFunction(p *Program, fn *Function, spec bool) (vc *vmCode) {
	defer func() {
		if r := recover(); r != nil {
			vc = nil // unexpected AST shape: keep the walker for this program
		}
	}()
	c := &compiler{
		prog:    p,
		fn:      fn,
		spec:    spec,
		vc:      &vmCode{},
		tempTop: int32(fn.NumSlots),
		maxRegs: fn.NumSlots,
	}
	c.scanKinds()
	c.uni = analyzeUniform(fn)
	// Self-referential initializers observe the slot's content from
	// before the declaration; the walker sees a zeroed frame there, the
	// VM a pooled register file, so those slots are cleared on entry.
	for _, slot := range c.zeroSlots {
		c.emit(instr{op: opConstR, a: slot, imm: c.rvalIdx(rval{})})
	}
	c.compileStmt(fn.Body)
	// Falling off the end returns rval{} without return-type conversion
	// (the walker's flowNormal path).
	c.emit(instr{op: opReturnNil})
	c.vc.numRegs = c.maxRegs
	return c.vc
}

// compiler lowers one function. Registers below fn.NumSlots are the
// variable frame slots the parser assigned; expression temporaries are
// allocated above them with a mark/reset watermark per statement.
type compiler struct {
	prog *Program
	fn   *Function
	vc   *vmCode
	spec bool

	tempTop int32
	maxRegs int
	loops   []loopPatch

	// Static kind inference (kinds.go): the guaranteed runtime kind of
	// each variable slot (KVoid = unknown), the element kind of slots
	// holding locally declared arrays, and the slots whose initializers
	// read their own pre-declaration content.
	slotKind  []ValKind
	elemKind  []ValKind
	zeroSlots []int32

	// Uniformity analysis (uniform.go): which variable slots provably
	// hold work-item-ID-independent values, for branch hints consumed by
	// the lockstep-vectorized engine.
	uni *uniScan
}

// loopPatch collects forward jumps of one lexical loop.
type loopPatch struct {
	breaks []int
	conts  []int
}

func (c *compiler) emit(in instr) int {
	c.vc.code = append(c.vc.code, in)
	return len(c.vc.code) - 1
}

// patch points a previously emitted jump at the next instruction.
func (c *compiler) patch(idx int) { c.setTarget(idx, int64(len(c.vc.code))) }

// setTarget writes a jump target: fused compare-and-branch instructions
// keep it in c (imm carries their constant), plain jumps in imm.
func (c *compiler) setTarget(idx int, target int64) {
	in := &c.vc.code[idx]
	if in.op == opBrCmpFalse || in.op == opBrCmpFalseImm {
		in.c = int32(target)
	} else {
		in.imm = target
	}
}

// cmpKinds maps comparison opcodes (register and immediate forms) to the
// opBrCmpFalse* comparison kind.
var cmpKinds = map[opcode]int32{
	opEq: cmpEq, opNe: cmpNe, opLt: cmpLt, opGt: cmpGt, opLe: cmpLe, opGe: cmpGe,
	opEqImm: cmpEq, opNeImm: cmpNe, opLtImm: cmpLt, opGtImm: cmpGt, opLeImm: cmpLe, opGeImm: cmpGe,
}

// emitCondBranch emits the branch-if-false on creg together with the
// associated counter bump (iter: opCtrBranch, opCtrLoop, opCtrUnroll, or
// opNop for none), fusing all of it into the comparison instruction that
// produced creg when there is one. cond is the source condition; when the
// uniformity analysis proves it work-item-ID-independent the branch
// carries the brUniform hint for the vector engine. Returns the index to
// patch with the false-path target. The counter reorderings are
// unobservable: no instruction between the comparison and the branch can
// fail, and counters are only read after the work-item finishes.
func (c *compiler) emitCondBranch(creg int32, iter opcode, cond Expr, pos Pos) int {
	var hint int32
	if c.uni.condUniform(cond) {
		hint = brUniform
	}
	if n := len(c.vc.code) - 1; n >= 0 {
		last := c.vc.code[n]
		if kind, ok := cmpKinds[last.op]; ok && last.a == creg && creg >= int32(c.fn.NumSlots) {
			var cb int32
			switch iter {
			case opCtrBranch:
				cb = cbIterBranch
			case opCtrLoop:
				cb = cbIterLoop
			case opCtrUnroll:
				cb = cbIterUnroll
			}
			fop := opBrCmpFalse
			if last.op >= opEqImm && last.op <= opGeImm {
				fop = opBrCmpFalseImm
			}
			c.vc.code[n] = instr{op: fop, a: last.b, b: last.c, imm: last.imm, d: kind | cb<<8 | hint, pos: pos}
			return n
		}
	}
	if iter == opCtrBranch {
		c.emit(instr{op: opCtrBranch, imm: 1, pos: pos})
	}
	jf := c.emit(instr{op: opJumpFalse, a: creg, d: boolHint(hint != 0), pos: pos})
	if iter == opCtrLoop || iter == opCtrUnroll {
		c.emit(instr{op: iter, pos: pos})
	}
	return jf
}

// boolHint encodes a uniformity hint for opJumpFalse/opJumpTrue, whose d
// operand is otherwise unused.
func boolHint(uniform bool) int32 {
	if uniform {
		return 1
	}
	return 0
}

func (c *compiler) newTemp() int32 {
	r := c.tempTop
	c.tempTop++
	if int(c.tempTop) > c.maxRegs {
		c.maxRegs = int(c.tempTop)
	}
	return r
}

// allocBlock reserves n consecutive registers (call argument windows).
func (c *compiler) allocBlock(n int) int32 {
	base := c.tempTop
	c.tempTop += int32(n)
	if int(c.tempTop) > c.maxRegs {
		c.maxRegs = int(c.tempTop)
	}
	return base
}

func (c *compiler) mark() int32   { return c.tempTop }
func (c *compiler) reset(m int32) { c.tempTop = m }
func (c *compiler) errIdx(err error) int64 {
	c.vc.errTab = append(c.vc.errTab, err)
	return int64(len(c.vc.errTab) - 1)
}
func (c *compiler) rvalIdx(v rval) int64 {
	c.vc.rvalTab = append(c.vc.rvalTab, v)
	return int64(len(c.vc.rvalTab) - 1)
}
func (c *compiler) countIdx(d Counters) int64 {
	c.vc.countTab = append(c.vc.countTab, d)
	return int64(len(c.vc.countTab) - 1)
}
func (c *compiler) declIdx(d *VarDecl) int64 {
	c.vc.declTab = append(c.vc.declTab, d)
	return int64(len(c.vc.declTab) - 1)
}
func (c *compiler) fnIdx(fn *Function) int64 {
	c.vc.fnTab = append(c.vc.fnTab, fn)
	return int64(len(c.vc.fnTab) - 1)
}
func (c *compiler) callIdx(x *Call) int64 {
	c.vc.callTab = append(c.vc.callTab, x)
	c.vc.builtins = append(c.vc.builtins, builtins[x.Name])
	return int64(len(c.vc.callTab) - 1)
}

// foldKind classifies a constant-folding attempt.
type foldKind uint8

const (
	foldNo  foldKind = iota // needs runtime state; compile normally
	foldVal                 // folded to a value, delta holds its op mix
	foldErr                 // folds to a guaranteed runtime error
)

// fold attempts compile-time evaluation of a define-derived expression.
// It mirrors the walker exactly — the same applyBinary/evalUnary rules,
// including counter increments and their order relative to errors — and
// accumulates the operation mix into delta so emitted opCtr*/opCount
// instructions keep Counters bit-identical to an interpreted run. On
// foldNo the caller must discard delta and compile the expression
// normally (its foldable sub-expressions re-fold individually).
func (c *compiler) fold(e Expr, delta *Counters) (rval, foldKind, error) {
	switch x := e.(type) {
	case *IntLit:
		return intVal(x.V), foldVal, nil
	case *FloatLit:
		return floatVal(x.V), foldVal, nil
	}
	if !c.spec {
		return rval{}, foldNo, nil
	}
	switch x := e.(type) {
	case *Cast:
		v, k, err := c.fold(x.X, delta)
		if k != foldVal {
			return v, k, err
		}
		return convert(v, x.To.Kind), foldVal, nil
	case *Unary:
		if x.Op == "++" || x.Op == "--" {
			return rval{}, foldNo, nil
		}
		v, k, err := c.fold(x.X, delta)
		if k != foldVal {
			return v, k, err
		}
		switch x.Op {
		case "-":
			if v.k == KFloat {
				delta.FloatOps++
				return floatVal(-v.f), foldVal, nil
			}
			delta.IntOps++
			return intVal(-v.i), foldVal, nil
		case "!":
			delta.IntOps++
			if v.truthy() {
				return intVal(0), foldVal, nil
			}
			return intVal(1), foldVal, nil
		case "~":
			delta.IntOps++
			return intVal(^v.asInt()), foldVal, nil
		}
		return rval{}, foldNo, nil
	case *Binary:
		if x.Op == "&&" || x.Op == "||" {
			l, k, err := c.fold(x.L, delta)
			if k != foldVal {
				return l, k, err
			}
			delta.Branches++
			if x.Op == "&&" && !l.truthy() {
				return intVal(0), foldVal, nil
			}
			if x.Op == "||" && l.truthy() {
				return intVal(1), foldVal, nil
			}
			r, k, err := c.fold(x.R, delta)
			if k != foldVal {
				return r, k, err
			}
			if r.truthy() {
				return intVal(1), foldVal, nil
			}
			return intVal(0), foldVal, nil
		}
		l, k, err := c.fold(x.L, delta)
		if k != foldVal {
			return l, k, err
		}
		r, k, err := c.fold(x.R, delta)
		if k != foldVal {
			return r, k, err
		}
		sw := wiCtx{ctr: delta}
		v, err := sw.applyBinary(x.Pos, x.Op, l, r)
		if err != nil {
			return rval{}, foldErr, err
		}
		return v, foldVal, nil
	case *Cond:
		cv, k, err := c.fold(x.C, delta)
		if k != foldVal {
			return cv, k, err
		}
		delta.Branches++
		if cv.truthy() {
			return c.fold(x.T, delta)
		}
		return c.fold(x.F, delta)
	}
	return rval{}, foldNo, nil
}

// emitDelta materializes a folded expression's operation mix.
func (c *compiler) emitDelta(d Counters, pos Pos) {
	if d == (Counters{}) {
		return
	}
	switch {
	case d == (Counters{IntOps: d.IntOps}):
		c.emit(instr{op: opCtrInt, imm: d.IntOps, pos: pos})
	case d == (Counters{FloatOps: d.FloatOps}):
		c.emit(instr{op: opCtrFloat, imm: d.FloatOps, pos: pos})
	case d == (Counters{Branches: d.Branches}):
		c.emit(instr{op: opCtrBranch, imm: d.Branches, pos: pos})
	default:
		c.emit(instr{op: opCount, imm: c.countIdx(d), pos: pos})
	}
}

func (c *compiler) emitConst(dst int32, v rval, pos Pos) {
	switch v.k {
	case KInt:
		c.emit(instr{op: opConstI, a: dst, imm: v.i, pos: pos})
	case KFloat:
		c.emit(instr{op: opConstF, a: dst, f: v.f, pos: pos})
	default:
		c.emit(instr{op: opConstR, a: dst, imm: c.rvalIdx(v), pos: pos})
	}
}

func (c *compiler) emitErr(err error, pos Pos) {
	c.emit(instr{op: opErr, imm: c.errIdx(err), pos: pos})
}

// writesFrame reports whether evaluating e can write a frame slot of the
// current function (assignments and ++/--; helper calls write their own
// frames, but their argument expressions run in ours).
func writesFrame(e Expr) bool {
	switch x := e.(type) {
	case *Assign:
		return true
	case *Unary:
		if x.Op == "++" || x.Op == "--" {
			return true
		}
		return writesFrame(x.X)
	case *Binary:
		return writesFrame(x.L) || writesFrame(x.R)
	case *Cond:
		return writesFrame(x.C) || writesFrame(x.T) || writesFrame(x.F)
	case *Cast:
		return writesFrame(x.X)
	case *Index:
		if writesFrame(x.Base) {
			return true
		}
		for _, ie := range x.Idx {
			if writesFrame(ie) {
				return true
			}
		}
		return false
	case *Call:
		for _, a := range x.Args {
			if writesFrame(a) {
				return true
			}
		}
		return false
	}
	return false
}

// fallible reports whether evaluating e can produce a runtime error. It
// gates the opCheckPtr/opCheck2D guards that preserve the walker's error
// order (pointer check before index evaluation); over-approximating only
// costs an extra guard instruction.
func fallible(e Expr) bool {
	switch x := e.(type) {
	case *IntLit, *FloatLit, *VarRef:
		return false
	case *Cast:
		return fallible(x.X)
	case *Unary:
		if x.Op == "++" || x.Op == "--" {
			if _, ok := x.X.(*VarRef); ok {
				return false
			}
			return true
		}
		return fallible(x.X)
	case *Binary:
		switch x.Op {
		case "/", "%", "<<", ">>", "&", "|", "^":
			return true
		}
		return fallible(x.L) || fallible(x.R)
	case *Cond:
		return fallible(x.C) || fallible(x.T) || fallible(x.F)
	}
	return true // Assign, Index, Call
}

// compileExpr emits code computing e and returns the register holding
// the result. The register may be a live variable slot (VarRef); callers
// that read it after code with frame side effects must go through
// compileOperand.
func (c *compiler) compileExpr(e Expr) int32 {
	var d Counters
	v, k, err := c.fold(e, &d)
	if k == foldVal {
		c.emitDelta(d, e.exprPos())
		t := c.newTemp()
		c.emitConst(t, v, e.exprPos())
		return t
	}
	if k == foldErr {
		c.emitDelta(d, e.exprPos())
		c.emitErr(err, e.exprPos())
		return c.newTemp() // unreachable
	}
	switch x := e.(type) {
	case *IntLit:
		t := c.newTemp()
		c.emit(instr{op: opConstI, a: t, imm: x.V, pos: x.Pos})
		return t
	case *FloatLit:
		t := c.newTemp()
		c.emit(instr{op: opConstF, a: t, f: x.V, pos: x.Pos})
		return t
	case *VarRef:
		return int32(x.Slot)
	case *Cast:
		r := c.compileExpr(x.X)
		t := c.newTemp()
		c.emit(instr{op: opConvert, a: t, b: r, c: int32(x.To.Kind), pos: x.Pos})
		return t
	case *Cond:
		return c.compileCond(x)
	case *Unary:
		return c.compileUnary(x)
	case *Binary:
		return c.compileBinary(x)
	case *Assign:
		return c.compileAssign(x)
	case *Index:
		t := c.newTemp()
		c.compileIndexLoad(x, t)
		return t
	case *Call:
		return c.compileCall(x)
	}
	panic(fmt.Sprintf("oclc: cannot lower %T", e))
}

// compileOperand compiles one operand of a multi-operand instruction.
// When clobber is set (a later operand's evaluation can write frame
// slots), a result living in a variable slot is copied to a temp so the
// instruction observes the walker's left-to-right evaluation order.
func (c *compiler) compileOperand(e Expr, clobber bool) int32 {
	r := c.compileExpr(e)
	if clobber && r < int32(c.fn.NumSlots) {
		t := c.newTemp()
		c.emit(instr{op: opMove, a: t, b: r})
		return t
	}
	return r
}

func (c *compiler) compileExprInto(e Expr, dst int32) {
	start := len(c.vc.code)
	r := c.compileExpr(e)
	if r == dst {
		return
	}
	if c.retarget(start, r, dst) {
		return
	}
	c.emit(instr{op: opMove, a: dst, b: r})
}

// retarget redirects the result of the expression compiled since start
// from temporary r into dst, when the last emitted instruction is its
// unique producer: it must write r, be a pure-dst op, and sit in a
// branch-free window (control flow means multiple writers, e.g. the two
// arms of a ternary). Returns false when an explicit move is needed.
func (c *compiler) retarget(start int, r, dst int32) bool {
	n := len(c.vc.code)
	if n > start && c.vc.code[n-1].a == r && r >= int32(c.fn.NumSlots) &&
		retargetable(c.vc.code[n-1].op) && straightLine(c.vc.code[start:n]) {
		c.vc.code[n-1].a = dst
		return true
	}
	return false
}

// landExpr compiles e so its value ends up in a variable slot whose
// statically-known kind matches e's, making the walker's store
// conversion a no-op: the producing instruction writes the slot
// directly, or an opMove replaces the opConvert/opStoreVar.
func (c *compiler) landExpr(e Expr, slot int32, pos Pos) {
	start := len(c.vc.code)
	r := c.compileExpr(e)
	if r == slot || c.retarget(start, r, slot) {
		return
	}
	c.emit(instr{op: opMove, a: slot, b: r, pos: pos})
}

func (c *compiler) compileCond(x *Cond) int32 {
	// Specialization: a define-derived condition selects its arm at
	// compile time and the dead arm is not emitted at all; the condition
	// still costs its folded operation mix plus the branch.
	var d Counters
	cv, k, err := c.fold(x.C, &d)
	if k == foldErr {
		c.emitDelta(d, x.Pos)
		c.emitErr(err, x.Pos)
		return c.newTemp()
	}
	if k == foldVal {
		d.Branches++
		c.emitDelta(d, x.Pos)
		if cv.truthy() {
			return c.compileExpr(x.T)
		}
		return c.compileExpr(x.F)
	}
	rc := c.compileExpr(x.C)
	t := c.newTemp()
	jf := c.emitCondBranch(rc, opCtrBranch, x.C, x.Pos)
	m := c.mark()
	c.compileExprInto(x.T, t)
	c.reset(m)
	j := c.emit(instr{op: opJump})
	c.patch(jf)
	c.compileExprInto(x.F, t)
	c.reset(m)
	c.patch(j)
	return t
}

func (c *compiler) compileUnary(x *Unary) int32 {
	if x.Op == "++" || x.Op == "--" {
		delta := int64(1)
		if x.Op == "--" {
			delta = -1
		}
		post := int32(0)
		if x.Postfix {
			post = 1
		}
		switch t := x.X.(type) {
		case *VarRef:
			r := c.newTemp()
			c.emit(instr{op: opIncVar, a: r, b: int32(t.Slot), c: post, imm: delta, pos: x.Pos})
			return r
		case *Index:
			old := c.newTemp()
			c.compileIndexLoad(t, old)
			nv := c.newTemp()
			c.emit(instr{op: opIncVal, a: nv, b: old, imm: delta, pos: x.Pos})
			c.compileIndexStore(t, nv)
			if x.Postfix {
				return old
			}
			return nv
		default:
			// The walker evaluates the operand and counts the increment
			// before failing in storeTo.
			old := c.compileExpr(x.X)
			nv := c.newTemp()
			c.emit(instr{op: opIncVal, a: nv, b: old, imm: delta, pos: x.Pos})
			c.emitErr(errf(x.X.exprPos(), "invalid assignment target %T", x.X), x.Pos)
			return nv
		}
	}
	r := c.compileExpr(x.X)
	t := c.newTemp()
	switch x.Op {
	case "-":
		c.emit(instr{op: opNeg, a: t, b: r, pos: x.Pos})
	case "!":
		c.emit(instr{op: opNot, a: t, b: r, pos: x.Pos})
	case "~":
		c.emit(instr{op: opBitNot, a: t, b: r, pos: x.Pos})
	default:
		c.emitErr(errf(x.Pos, "unknown unary operator %q", x.Op), x.Pos)
	}
	return t
}

// binOps maps source operators to opcodes (compound assignment reuses it
// after stripping the trailing '=').
var binOps = map[string]opcode{
	"+": opAdd, "-": opSub, "*": opMul, "/": opDiv, "%": opMod,
	"<<": opShl, ">>": opShr, "&": opBitAnd, "|": opBitOr, "^": opBitXor,
	"==": opEq, "!=": opNe, "<": opLt, ">": opGt, "<=": opLe, ">=": opGe,
}

func (c *compiler) compileBinary(x *Binary) int32 {
	if x.Op == "&&" || x.Op == "||" {
		rl := c.compileOperand(x.L, false)
		c.emit(instr{op: opCtrBranch, imm: 1, pos: x.Pos})
		t := c.newTemp()
		jop := opJumpFalse
		short := int64(0)
		if x.Op == "||" {
			jop = opJumpTrue
			short = 1
		}
		js := c.emit(instr{op: jop, a: rl, d: boolHint(c.uni.condUniform(x.L)), pos: x.Pos})
		m := c.mark()
		rr := c.compileExpr(x.R)
		c.emit(instr{op: opBool, a: t, b: rr, pos: x.Pos})
		c.reset(m)
		j := c.emit(instr{op: opJump})
		c.patch(js)
		c.emit(instr{op: opConstI, a: t, imm: short})
		c.patch(j)
		return t
	}
	op, ok := binOps[x.Op]
	if !ok {
		t := c.newTemp()
		c.emitErr(errf(x.Pos, "unknown binary operator %q", x.Op), x.Pos)
		return t
	}
	// Immediate forms: a side folding to an integer constant skips its
	// materialization. A folded side cannot write frames (++/assignments
	// never fold), so the other operand needs no clobber copy; its folded
	// operation mix is emitted as a counter delta in walker evaluation
	// order (left delta before the right operand's code, right delta
	// after the left's).
	var d Counters
	if rv, k, _ := c.fold(x.R, &d); k == foldVal && rv.k == KInt {
		if iop, ok := immOpsR[x.Op]; ok && !((x.Op == "/" || x.Op == "%") && rv.i == 0) {
			rl := c.compileOperand(x.L, false)
			c.emitDelta(d, x.Pos)
			t := c.newTemp()
			c.emit(instr{op: iop, a: t, b: rl, imm: rv.i, pos: x.Pos})
			return t
		}
	}
	d = Counters{}
	if lv, k, _ := c.fold(x.L, &d); k == foldVal && lv.k == KInt {
		if iop, ok := immOpsL[x.Op]; ok {
			c.emitDelta(d, x.Pos)
			rr := c.compileOperand(x.R, false)
			t := c.newTemp()
			c.emit(instr{op: iop, a: t, b: rr, imm: lv.i, pos: x.Pos})
			return t
		}
	}
	rl := c.compileOperand(x.L, writesFrame(x.R))
	rr := c.compileExpr(x.R)
	t := c.newTemp()
	c.emit(instr{op: op, a: t, b: rl, c: rr, pos: x.Pos})
	return t
}

// immOpsR maps operators to their immediate form for a constant right
// operand; immOpsL for a constant left operand (commutative ops reuse the
// same opcode, comparisons swap, subtraction reverses).
var immOpsR = map[string]opcode{
	"+": opAddImm, "-": opSubImm, "*": opMulImm, "/": opDivImm, "%": opModImm,
	"<<": opShlImm, ">>": opShrImm, "&": opBitAndImm, "|": opBitOrImm, "^": opBitXorImm,
	"==": opEqImm, "!=": opNeImm, "<": opLtImm, ">": opGtImm, "<=": opLeImm, ">=": opGeImm,
}

var immOpsL = map[string]opcode{
	"+": opAddImm, "-": opRSubImm, "*": opMulImm,
	"&": opBitAndImm, "|": opBitOrImm, "^": opBitXorImm,
	"==": opEqImm, "!=": opNeImm, "<": opGtImm, ">": opLtImm, "<=": opGeImm, ">=": opLeImm,
}

func (c *compiler) compileAssign(x *Assign) int32 {
	if t, ok := x.Target.(*VarRef); ok {
		if r, ok := c.compileVarAssign(x, t); ok {
			return r
		}
	}
	// The walker evaluates Value first; target sub-expressions (and the
	// compound-target load) run afterwards, so a Value living in a frame
	// slot must be snapshotted if the target leg can write frames.
	rv := c.compileOperand(x.Value, writesFrame(x.Target))
	switch t := x.Target.(type) {
	case *VarRef:
		if x.Op == "=" {
			c.emit(instr{op: opStoreVar, a: int32(t.Slot), b: rv, pos: x.Pos})
			return rv // assignment value before slot-kind conversion
		}
		op, ok := binOps[x.Op[:len(x.Op)-1]]
		if !ok {
			c.emitErr(errf(x.Pos, "unknown binary operator %q", x.Op[:len(x.Op)-1]), x.Pos)
			return rv
		}
		nv := c.newTemp()
		c.emit(instr{op: op, a: nv, b: int32(t.Slot), c: rv, pos: x.Pos})
		c.emit(instr{op: opStoreVar, a: int32(t.Slot), b: nv, pos: x.Pos})
		return nv
	case *Index:
		if x.Op == "=" {
			c.compileIndexStore(t, rv)
			return rv
		}
		op, ok := binOps[x.Op[:len(x.Op)-1]]
		if !ok {
			c.emitErr(errf(x.Pos, "unknown binary operator %q", x.Op[:len(x.Op)-1]), x.Pos)
			return rv
		}
		// Compound index assignment re-resolves the index for the store
		// leg exactly like the walker's storeTo (double-counting index
		// arithmetic and re-running index side effects).
		old := c.newTemp()
		c.compileIndexLoad(t, old)
		nv := c.newTemp()
		c.emit(instr{op: op, a: nv, b: old, c: rv, pos: x.Pos})
		c.compileIndexStore(t, nv)
		return nv
	default:
		if x.Op != "=" {
			old := c.compileExpr(x.Target)
			if op, ok := binOps[x.Op[:len(x.Op)-1]]; ok {
				nv := c.newTemp()
				c.emit(instr{op: op, a: nv, b: old, c: rv, pos: x.Pos})
			}
		}
		c.emitErr(errf(x.Target.exprPos(), "invalid assignment target %T", x.Target), x.Pos)
		return rv
	}
}

// compileVarAssign lowers an assignment to a scalar slot of
// statically-known kind when the stored value provably has that kind,
// eliding the storeTo conversion: the producer writes the slot directly,
// and a compound assignment with a constant integer operand becomes a
// single read-modify-write instruction (`kwg += WGD` is one opAddImm).
// Returns ok=false when the generic path must run.
func (c *compiler) compileVarAssign(x *Assign, t *VarRef) (int32, bool) {
	sk := c.slotKind[t.Slot]
	if sk != KInt && sk != KFloat {
		return 0, false
	}
	slot := int32(t.Slot)
	if x.Op == "=" {
		if c.staticKind(x.Value) != sk {
			return 0, false
		}
		c.landExpr(x.Value, slot, x.Pos)
		return slot, true
	}
	base := x.Op[:len(x.Op)-1]
	if _, ok := binOps[base]; !ok {
		return 0, false
	}
	var d Counters
	if cv, k, _ := c.fold(x.Value, &d); k == foldVal && cv.k == KInt {
		if iop, ok := immOpsR[base]; ok && !((base == "/" || base == "%") && cv.i == 0) &&
			binKind(base, sk, KInt) == sk {
			c.emitDelta(d, x.Pos)
			c.emit(instr{op: iop, a: slot, b: slot, imm: cv.i, pos: x.Pos})
			return slot, true
		}
	}
	if binKind(base, sk, c.staticKind(x.Value)) != sk {
		return 0, false
	}
	// A VarRef target leg has no frame effects, so the value needs no
	// clobber snapshot; the slot is read at the operation, after the
	// value's side effects, exactly like the walker's target load.
	rv := c.compileOperand(x.Value, false)
	c.emit(instr{op: binOps[base], a: slot, b: slot, c: rv, pos: x.Pos})
	return slot, true
}

// compileIndexOperands emits base and index computation with the
// walker's error order: the pointer check precedes index evaluation and
// the dimensionality check precedes the second index, so guards are
// emitted whenever a following sub-expression can itself fail.
func (c *compiler) compileIndexOperands(x *Index) (base, r0, r1 int32) {
	idxWrites := false
	idxFails := false
	for _, ie := range x.Idx {
		idxWrites = idxWrites || writesFrame(ie)
		idxFails = idxFails || fallible(ie)
	}
	base = c.compileOperand(x.Base, idxWrites)
	if idxFails {
		c.emit(instr{op: opCheckPtr, a: base, pos: x.Pos})
	}
	clob1 := len(x.Idx) == 2 && writesFrame(x.Idx[1])
	r0 = c.compileOperand(x.Idx[0], clob1)
	r1 = -1
	if len(x.Idx) == 2 {
		if fallible(x.Idx[1]) {
			c.emit(instr{op: opCheck2D, a: base, pos: x.Pos})
		}
		r1 = c.compileOperand(x.Idx[1], false)
	}
	return base, r0, r1
}

func (c *compiler) compileIndexLoad(x *Index, dst int32) {
	base, r0, r1 := c.compileIndexOperands(x)
	if r1 < 0 {
		c.emit(instr{op: opLoad1, a: dst, b: base, c: r0, imm: int64(x.Site), pos: x.Pos})
	} else {
		c.emit(instr{op: opLoad2, a: dst, b: base, c: r0, d: r1, imm: int64(x.Site), pos: x.Pos})
	}
}

func (c *compiler) compileIndexStore(x *Index, src int32) {
	base, r0, r1 := c.compileIndexOperands(x)
	if r1 < 0 {
		c.emit(instr{op: opStore1, a: base, b: r0, c: src, imm: int64(x.Site), pos: x.Pos})
	} else {
		c.emit(instr{op: opStore2, a: base, b: r0, c: r1, d: src, imm: int64(x.Site), pos: x.Pos})
	}
}

func (c *compiler) compileCall(x *Call) int32 {
	if _, ok := builtins[x.Name]; ok {
		return c.compileBuiltin(x)
	}
	callee, ok := c.prog.Funcs[x.Name]
	if !ok {
		c.emitErr(errf(x.Pos, "call to undefined function %q", x.Name), x.Pos)
		return c.newTemp()
	}
	if len(x.Args) != len(callee.Params) {
		// Arity is checked before argument evaluation (walker order).
		c.emitErr(errf(x.Pos, "%q expects %d arguments, got %d",
			callee.Name, len(callee.Params), len(x.Args)), x.Pos)
		return c.newTemp()
	}
	base := c.allocBlock(len(x.Args))
	for i, a := range x.Args {
		m := c.mark()
		c.compileExprInto(a, base+int32(i))
		c.reset(m)
		if !callee.Params[i].Type.Ptr {
			c.emit(instr{op: opConvert, a: base + int32(i), b: base + int32(i),
				c: int32(callee.Params[i].Type.Kind), pos: x.Pos})
		}
	}
	t := c.newTemp()
	// d records the live temp watermark of the caller frame while the
	// callee runs (vector lane re-convergence; see opcode.go).
	c.emit(instr{op: opCallFn, a: t, b: base, c: int32(len(x.Args)), d: c.tempTop, imm: c.fnIdx(callee), pos: x.Pos})
	return t
}

// wiQueryKinds maps the work-item query builtins to opWIQuery kinds.
var wiQueryKinds = map[string]int32{
	"get_global_id":   wqGlobalID,
	"get_local_id":    wqLocalID,
	"get_group_id":    wqGroupID,
	"get_global_size": wqGlobalSize,
	"get_local_size":  wqLocalSize,
	"get_num_groups":  wqNumGroups,
	"get_work_dim":    wqWorkDim,
}

func (c *compiler) compileBuiltin(x *Call) int32 {
	switch x.Name {
	case "barrier", "work_group_barrier":
		// Never routed through generic dispatch: opBarrier suspends the
		// work-item so the cooperative scheduler can synchronize the
		// group. The walker evaluates arguments (for effect) and then
		// synchronizes regardless of arity.
		c.compileArgsForEffect(x.Args)
		// a records the live temp watermark: registers at or above it are
		// dead across the suspension (vector lane re-convergence ignores
		// them; see opcode.go).
		c.emit(instr{op: opBarrier, a: c.tempTop, pos: x.Pos})
		t := c.newTemp()
		c.emit(instr{op: opConstR, a: t, imm: c.rvalIdx(rval{}), pos: x.Pos})
		return t
	case "fma", "mad":
		if len(x.Args) == 3 {
			r0 := c.compileOperand(x.Args[0], writesFrame(x.Args[1]) || writesFrame(x.Args[2]))
			r1 := c.compileOperand(x.Args[1], writesFrame(x.Args[2]))
			r2 := c.compileOperand(x.Args[2], false)
			t := c.newTemp()
			c.emit(instr{op: opFMA, a: t, b: r0, c: r1, d: r2, pos: x.Pos})
			return t
		}
	case "get_global_id", "get_local_id", "get_group_id",
		"get_global_size", "get_local_size", "get_num_groups", "get_work_dim":
		if r, ok := c.tryWIQuery(x); ok {
			return r
		}
	}
	return c.compileGenericBuiltin(x)
}

// tryWIQuery specializes a work-item query whose arguments all fold to
// constants (the overwhelmingly common get_*_id(0) shape) into a single
// opWIQuery. Non-constant arguments fall back to generic dispatch.
func (c *compiler) tryWIQuery(x *Call) (int32, bool) {
	var d Counters
	vals := make([]rval, len(x.Args))
	for i, a := range x.Args {
		v, k, _ := c.fold(a, &d)
		if k != foldVal {
			return 0, false
		}
		vals[i] = v
	}
	c.emitDelta(d, x.Pos)
	kind := wiQueryKinds[x.Name]
	dim := int64(0)
	if kind != wqWorkDim {
		if len(vals) >= 1 {
			dim = vals[0].asInt()
		}
		if dim < 0 || dim > 2 {
			c.emitErr(errf(x.Pos, "work-item dimension %d out of range", dim), x.Pos)
			return c.newTemp(), true
		}
	}
	t := c.newTemp()
	c.emit(instr{op: opWIQuery, a: t, b: kind, c: int32(dim), pos: x.Pos})
	return t, true
}

// compileArgsForEffect evaluates arguments whose value is discarded
// (barrier operands), eliding side-effect-free constants entirely.
func (c *compiler) compileArgsForEffect(args []Expr) {
	for _, a := range args {
		var d Counters
		if _, k, _ := c.fold(a, &d); k == foldVal {
			c.emitDelta(d, a.exprPos())
			continue
		}
		m := c.mark()
		c.compileExpr(a)
		c.reset(m)
	}
}

func (c *compiler) compileGenericBuiltin(x *Call) int32 {
	base := c.allocBlock(len(x.Args))
	for i, a := range x.Args {
		m := c.mark()
		c.compileExprInto(a, base+int32(i))
		c.reset(m)
	}
	t := c.newTemp()
	c.emit(instr{op: opCallBuiltin, a: t, b: base, c: int32(len(x.Args)), imm: c.callIdx(x), pos: x.Pos})
	return t
}

func (c *compiler) compileStmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		for _, sub := range st.Stmts {
			c.compileStmt(sub)
		}
	case *DeclStmt:
		for _, d := range st.Decls {
			c.compileDecl(d)
		}
	case *ExprStmt:
		m := c.mark()
		c.compileExpr(st.X)
		c.reset(m)
	case *If:
		c.compileIf(st)
	case *For:
		c.compileFor(st)
	case *While:
		c.compileWhile(st)
	case *Return:
		if st.X == nil {
			// Bare return converts rval{} to the return type (walker's
			// callFunction flowReturn path), unlike falling off the end.
			c.emit(instr{op: opReturnNil, imm: 1, pos: st.Pos})
			return
		}
		m := c.mark()
		r := c.compileExpr(st.X)
		c.emit(instr{op: opReturn, a: r, pos: st.Pos})
		c.reset(m)
	case *BreakStmt:
		if len(c.loops) == 0 {
			// The walker unwinds a stray break to the function end.
			c.emit(instr{op: opReturnNil, pos: st.Pos})
			return
		}
		l := &c.loops[len(c.loops)-1]
		l.breaks = append(l.breaks, c.emit(instr{op: opJump, pos: st.Pos}))
	case *ContinueStmt:
		if len(c.loops) == 0 {
			c.emit(instr{op: opReturnNil, pos: st.Pos})
			return
		}
		l := &c.loops[len(c.loops)-1]
		l.conts = append(l.conts, c.emit(instr{op: opJump, pos: st.Pos}))
	default:
		panic(fmt.Sprintf("oclc: cannot lower %T", s))
	}
}

func (c *compiler) compileIf(st *If) {
	var d Counters
	cv, k, err := c.fold(st.Cond, &d)
	if k == foldErr {
		c.emitDelta(d, st.Pos)
		c.emitErr(err, st.Pos)
		return
	}
	if k == foldVal {
		// Dead-branch elimination: the define-derived condition still
		// costs its operation mix plus the branch, but only the live
		// side is lowered.
		d.Branches++
		c.emitDelta(d, st.Pos)
		if cv.truthy() {
			c.compileStmt(st.Then)
		} else if st.Else != nil {
			c.compileStmt(st.Else)
		}
		return
	}
	m := c.mark()
	rc := c.compileExpr(st.Cond)
	jf := c.emitCondBranch(rc, opCtrBranch, st.Cond, st.Pos)
	c.reset(m)
	c.compileStmt(st.Then)
	if st.Else == nil {
		c.patch(jf)
		return
	}
	j := c.emit(instr{op: opJump})
	c.patch(jf)
	c.compileStmt(st.Else)
	c.patch(j)
}

// compileLoopCond emits the per-iteration condition check at the loop
// top together with the iteration-counter bump (iter: opCtrLoop or
// opCtrUnroll), fused into one compare-and-branch when the condition
// ends in a comparison. A condition folding to a constant keeps its
// per-iteration counter cost but drops the test; a constant-false
// condition means the loop body is dead code and is not emitted at all.
//
// Returns (jumpToPatch, enterBody): jumpToPatch < 0 when no conditional
// exit was emitted; enterBody is false when the loop provably never runs.
func (c *compiler) compileLoopCond(cond Expr, iter opcode, pos Pos) (int, bool) {
	if cond == nil {
		c.emit(instr{op: iter, pos: pos})
		return -1, true
	}
	var d Counters
	cv, k, err := c.fold(cond, &d)
	switch k {
	case foldErr:
		c.emitDelta(d, pos)
		c.emitErr(err, pos)
		return -1, false
	case foldVal:
		c.emitDelta(d, pos)
		if !cv.truthy() {
			return -1, false
		}
		c.emit(instr{op: iter, pos: pos})
		return -1, true
	}
	m := c.mark()
	rc := c.compileExpr(cond)
	jf := c.emitCondBranch(rc, iter, cond, pos)
	c.reset(m)
	return jf, true
}

func (c *compiler) compileFor(st *For) {
	if st.Init != nil {
		c.compileStmt(st.Init)
	}
	// A constant-false condition is checked (and its delta paid) once,
	// outside the loop, because the body never runs.
	if st.Cond != nil {
		var d Counters
		if cv, k, err := c.fold(st.Cond, &d); k != foldNo {
			if k == foldErr {
				c.emitDelta(d, st.Pos)
				c.emitErr(err, st.Pos)
				return
			}
			if !cv.truthy() {
				c.emitDelta(d, st.Pos)
				return
			}
		}
	}
	iter := opCtrLoop
	if st.Unroll != 0 {
		// The unroll hint is resolved at compile time: iterations land
		// in UnrolledIters without a per-iteration runtime test.
		iter = opCtrUnroll
	}
	top := len(c.vc.code)
	jf, _ := c.compileLoopCond(st.Cond, iter, st.Pos)
	c.loops = append(c.loops, loopPatch{})
	c.compileStmt(st.Body)
	l := c.loops[len(c.loops)-1]
	c.loops = c.loops[:len(c.loops)-1]
	cont := len(c.vc.code)
	for _, idx := range l.conts {
		c.vc.code[idx].imm = int64(cont)
	}
	if st.Post != nil {
		m := c.mark()
		c.compileExpr(st.Post)
		c.reset(m)
	}
	c.emit(instr{op: opJump, imm: int64(top)})
	end := int64(len(c.vc.code))
	if jf >= 0 {
		c.setTarget(jf, end)
	}
	for _, idx := range l.breaks {
		c.vc.code[idx].imm = end
	}
}

func (c *compiler) compileWhile(st *While) {
	var d Counters
	if cv, k, err := c.fold(st.Cond, &d); k != foldNo {
		if k == foldErr {
			c.emitDelta(d, st.Pos)
			c.emitErr(err, st.Pos)
			return
		}
		if !cv.truthy() {
			c.emitDelta(d, st.Pos)
			return
		}
	}
	top := len(c.vc.code)
	jf, _ := c.compileLoopCond(st.Cond, opCtrLoop, st.Pos)
	c.loops = append(c.loops, loopPatch{})
	c.compileStmt(st.Body)
	l := c.loops[len(c.loops)-1]
	c.loops = c.loops[:len(c.loops)-1]
	// continue in a while-loop re-evaluates the condition.
	for _, idx := range l.conts {
		c.vc.code[idx].imm = int64(top)
	}
	c.emit(instr{op: opJump, imm: int64(top)})
	end := int64(len(c.vc.code))
	if jf >= 0 {
		c.setTarget(jf, end)
	}
	for _, idx := range l.breaks {
		c.vc.code[idx].imm = end
	}
}

func (c *compiler) compileDecl(d *VarDecl) {
	if len(d.Dims) > 0 {
		c.compileArrayDecl(d)
		return
	}
	slot := int32(d.Slot)
	if d.Init == nil {
		if d.Type.Kind == KFloat {
			c.emit(instr{op: opConstF, a: slot, pos: d.Pos})
		} else {
			c.emit(instr{op: opConstI, a: slot, pos: d.Pos})
		}
		return
	}
	m := c.mark()
	// When the initializer provably already has the declared kind the
	// conversion is the identity and the value lands in the slot
	// directly. Self-referential initializers are excluded: eliding can
	// leave the slot's pre-declaration kind in place.
	if k := declSlotKind(d.Type); (k == KInt || k == KFloat) &&
		c.staticKind(d.Init) == k && !refsSlot(d.Init, d.Slot) {
		c.landExpr(d.Init, slot, d.Pos)
	} else {
		r := c.compileExpr(d.Init)
		c.emit(instr{op: opConvert, a: slot, b: r, c: int32(d.Type.Kind), pos: d.Pos})
	}
	c.reset(m)
}

func (c *compiler) compileArrayDecl(d *VarDecl) {
	di := c.declIdx(d)
	m := c.mark()
	regs := [2]int32{-1, -1}
	for i, e := range d.Dims {
		var dd Counters
		v, k, err := c.fold(e, &dd)
		if k == foldErr {
			c.emitDelta(dd, d.Pos)
			c.emitErr(err, d.Pos)
			regs[i] = c.newTemp() // unreachable
			continue
		}
		if k == foldVal {
			c.emitDelta(dd, d.Pos)
			if n := v.asInt(); n <= 0 {
				c.emitErr(fmt.Errorf("oclc: %s: array %q dimension %d is %d", d.Pos, d.Name, i, n), d.Pos)
			}
			r := c.newTemp()
			c.emitConst(r, v, d.Pos)
			regs[i] = r
			continue
		}
		r := c.compileOperand(e, i == 0 && len(d.Dims) == 2 && writesFrame(d.Dims[1]))
		c.emit(instr{op: opCheckDim, a: r, c: int32(i), imm: di, pos: d.Pos})
		regs[i] = r
	}
	c.emit(instr{op: opArray, a: int32(d.Slot), b: regs[0], c: regs[1], imm: di, pos: d.Pos})
	c.reset(m)
}
