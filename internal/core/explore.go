package core

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"atf/internal/obs"
)

// Technique is the paper's generic search-technique interface (Section IV):
//
//	class search_technique {
//	    void          initialize(search_space sp);
//	    void          finalize();
//	    configuration get_next_config();
//	    void          report_cost(size_t cost);
//	}
//
// Exploration repeatedly takes a configuration via GetNextConfig, evaluates
// it with the cost function, and reports the cost back via ReportCost until
// the abort condition fires. New techniques are added by implementing this
// interface.
type Technique interface {
	// Initialize is called once before exploration with the generated
	// search space and a seed for deterministic randomness.
	Initialize(sp *Space, seed int64)
	// Finalize is called once after exploration.
	Finalize()
	// GetNextConfig returns the next configuration to evaluate.
	GetNextConfig() *Config
	// ReportCost reports the cost of the most recently returned
	// configuration back to the technique.
	ReportCost(cost Cost)
}

// Evaluation records one tested configuration.
type Evaluation struct {
	Index  uint64 // evaluation sequence number (0-based)
	Config *Config
	Cost   Cost
	Err    error
	At     time.Duration // elapsed since exploration start
	// Cached marks evaluations served from the cost cache: the same
	// configuration was already evaluated earlier in this run (only with
	// ExploreOptions.CacheCosts). Cached evaluations carry the original
	// cost and error of the first miss.
	Cached bool
}

// Result is the outcome of one tuning run.
type Result struct {
	Best        *Config
	BestCost    Cost
	Evaluations uint64
	Valid       uint64
	Elapsed     time.Duration
	// History holds every evaluation in order when ExploreOptions.Record
	// is set; otherwise only improvements are retained.
	History []Evaluation
	// Improvements lists the evaluations at which the best cost dropped.
	Improvements []Evaluation
}

// ExploreOptions tunes the exploration loop.
type ExploreOptions struct {
	// Seed makes the run deterministic; 0 selects a fixed default seed
	// (determinism by default keeps experiments reproducible).
	Seed int64
	// Record retains the full evaluation history in the result.
	Record bool
	// CacheCosts memoizes cost evaluations by configuration, so search
	// techniques revisiting configurations do not pay the cost function
	// twice. Cached hits still count as evaluations, as in ATF.
	CacheCosts bool
	// Order overrides the lexicographic cost order.
	Order CostOrder
	// Now substitutes the wall clock (tests inject virtual time).
	Now func() time.Time
	// OnEvaluation, when set, observes every evaluation.
	OnEvaluation func(ev Evaluation)
	// Context, when set, cancels exploration early: cancellation acts like
	// an abort condition firing between evaluations, so the partial result
	// accumulated so far is still returned (with a nil error). Long-lived
	// callers — the atfd session manager shutting down — check their own
	// context to distinguish cancellation from completion.
	Context context.Context
}

// canceled reports whether the options' context (if any) is done.
func (o *ExploreOptions) canceled() bool {
	return o.Context != nil && o.Context.Err() != nil
}

// Explore runs the paper's exploration loop (Section II Step 3): it asks
// the technique for configurations, scores them with the cost function, and
// stops when the abort condition fires. A nil abort defaults to
// evaluations(S) with S the search-space size, exactly as in ATF.
func Explore(sp *Space, tech Technique, cf CostFunction, abort AbortCondition, opts ExploreOptions) (*Result, error) {
	if sp == nil || sp.Size() == 0 {
		return nil, fmt.Errorf("core: cannot explore an empty search space")
	}
	if tech == nil {
		return nil, fmt.Errorf("core: no search technique")
	}
	if cf == nil {
		return nil, fmt.Errorf("core: no cost function")
	}
	if abort == nil {
		abort = Evaluations(sp.Size())
	}
	order := opts.Order
	if order == nil {
		order = LexLess
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 0x5eed_a7f1
	}

	span := obs.StartSpan("explore", slog.Int("workers", 1))
	tech.Initialize(sp, seed)
	defer tech.Finalize()

	// The cache memoizes the full (cost, error) outcome: a cached failing
	// configuration reports the same Evaluation.Err as the first miss
	// instead of silently dropping it.
	type cachedEval struct {
		cost Cost
		err  error
	}
	var cache map[string]cachedEval
	if opts.CacheCosts {
		cache = make(map[string]cachedEval)
	}

	st := &State{Start: now(), SpaceSize: sp.Size()}
	res := &Result{}
	for {
		st.Now = now()
		if opts.canceled() || abort.Abort(st) {
			break
		}
		cfg := tech.GetNextConfig()
		if cfg == nil {
			break // technique exhausted (e.g. exhaustive search done)
		}

		var cost Cost
		var err error
		var cached bool
		if cache != nil {
			if c, ok := cache[cfg.Key()]; ok {
				cost, err, cached = c.cost, c.err, true
			} else {
				cost, err = timedCost(cf, cfg)
				if err != nil {
					cost = InfCost()
				}
				cache[cfg.Key()] = cachedEval{cost: cost, err: err}
			}
		} else {
			cost, err = timedCost(cf, cfg)
			if err != nil {
				cost = InfCost()
			}
		}
		commitMetrics(cached, err)

		st.Evaluations++
		if !cost.IsInf() {
			st.Valid++
		}
		elapsed := now().Sub(st.Start)
		ev := Evaluation{Index: st.Evaluations - 1, Config: cfg, Cost: cost, Err: err, At: elapsed, Cached: cached}
		if opts.Record {
			res.History = append(res.History, ev)
		}
		if opts.OnEvaluation != nil {
			opts.OnEvaluation(ev)
		}

		if !cost.IsInf() && (st.Best == nil || order(cost, st.Best)) {
			st.Best = cost.Clone()
			st.BestConfig = cfg.Clone()
			st.improvements = append(st.improvements, improvement{at: now(), eval: st.Evaluations, cost: cost.Primary()})
			res.Improvements = append(res.Improvements, ev)
		}

		tech.ReportCost(cost)
	}

	res.Best = st.BestConfig
	res.BestCost = st.Best
	res.Evaluations = st.Evaluations
	res.Valid = st.Valid
	res.Elapsed = now().Sub(st.Start)
	span.End(slog.Uint64("evaluations", res.Evaluations), slog.Uint64("valid", res.Valid))
	return res, nil
}

// timedCost runs one cost-function call inside the worker-occupancy gauge
// and the evaluation-latency histogram. Shared by Explore, ExploreParallel
// and the parallel cost cache so every *actual* cost-function execution —
// never a cache hit — lands in atf_evaluation_cost_seconds exactly once.
func timedCost(cf CostFunction, cfg *Config) (Cost, error) {
	mWorkersBusy.Inc()
	start := time.Now()
	cost, err := cf.Cost(cfg)
	mEvalSeconds.Observe(time.Since(start).Seconds())
	mWorkersBusy.Dec()
	return cost, err
}

// commitMetrics updates the process-wide evaluation counters for one
// committed evaluation.
func commitMetrics(cached bool, err error) {
	mEvaluations.Inc()
	if cached {
		mEvalCached.Inc()
	}
	if err != nil {
		mEvalFailed.Inc()
	}
}
