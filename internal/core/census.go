package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Census persistence: the counting pass of a lazy space (lazy.go) takes
// seconds on 10^19-range spaces, yet its result — the footprint-keyed
// census memo plus the per-group totals — is a pure function of the
// parameter specification. CensusSnapshot serializes that result;
// GenOptions.Census replays it into a later generation of the same
// specification, which then skips the counting pass entirely (a warm atfd
// restart sizes the space in microseconds). Restored entries prefill the
// same countTable consulted by slab expansion, and because a sealed lazy
// tree recomputes any *missing* table entry on demand, a truncated or
// partial snapshot degrades to extra counting work, never to wrong answers.
//
// The snapshot carries a per-group signature (parameter names and raw range
// lengths) as a guard against gross mismatches, but the real cache key is
// the caller's: atfd keys persisted censuses by the spec space hash, so a
// changed constraint invalidates the entry before this code ever sees it.

// censusVersion is the snapshot format version; a mismatch discards the
// snapshot (cold generation, never an error).
const censusVersion = 1

// censusEntry is one memoized subtree census: the memo key and the entry's
// completion count, logical vertex count, and block width.
type censusEntry struct {
	K []byte `json:"k"`
	C uint64 `json:"c"`
	V uint64 `json:"v"`
	W uint64 `json:"w"`
}

// censusGroup is the persisted census of one lazy group.
type censusGroup struct {
	Sig     string        `json:"sig"`
	Total   uint64        `json:"total"`
	Checks  uint64        `json:"checks"`
	Hits    uint64        `json:"hits"`
	Misses  uint64        `json:"misses"`
	Logical uint64        `json:"logical"`
	Unique  uint64        `json:"unique"`
	Entries []censusEntry `json:"entries"`
}

// censusSnapshot is the on-disk census of a space's lazy groups.
type censusSnapshot struct {
	Version int           `json:"version"`
	Groups  []censusGroup `json:"groups"`
}

// censusSig identifies a group's raw enumeration shape: parameter names and
// range lengths in declaration order. Constraint changes that keep the
// shape are not detectable here — callers persisting censuses must key them
// by a hash of the full specification.
func censusSig(params []*Param) string {
	var b strings.Builder
	for _, p := range params {
		fmt.Fprintf(&b, "%s:%d;", p.Name, p.Range.Len())
	}
	return b.String()
}

// CensusSnapshot serializes the census memos of the space's lazy groups for
// GenOptions.Census replay. ok is false when the space has no lazy groups
// (eager arenas need no warm-start). Safe to call concurrently with lookups
// on the space; entries still in flight at snapshot time are skipped.
func (s *Space) CensusSnapshot() (data []byte, ok bool) {
	snap := censusSnapshot{Version: censusVersion}
	for _, t := range s.trees {
		lt := t.lazy
		if lt == nil || !lt.sealed {
			continue
		}
		g := censusGroup{
			Sig:     censusSig(lt.params),
			Total:   lt.total,
			Checks:  t.checks,
			Hits:    t.memoHits,
			Misses:  t.memoMisses,
			Logical: t.logicalNodes,
			Unique:  t.uniqueNodes,
		}
		for i := range lt.counts.shards {
			sh := &lt.counts.shards[i]
			sh.mu.Lock()
			for k, e := range sh.m {
				if e.ready.Load() != 1 || e.panicked != nil {
					continue
				}
				g.Entries = append(g.Entries, censusEntry{
					K: []byte(k), C: e.count, V: e.vertices, W: e.width,
				})
			}
			sh.mu.Unlock()
		}
		sort.Slice(g.Entries, func(i, j int) bool {
			return string(g.Entries[i].K) < string(g.Entries[j].K)
		})
		snap.Groups = append(snap.Groups, g)
	}
	if len(snap.Groups) == 0 {
		return nil, false
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return nil, false
	}
	return data, true
}

// decodeCensus parses a snapshot into a signature-keyed group map. Any
// decoding problem yields nil — generation falls back to counting.
func decodeCensus(data []byte) map[string]*censusGroup {
	if len(data) == 0 {
		return nil
	}
	var snap censusSnapshot
	if err := json.Unmarshal(data, &snap); err != nil || snap.Version != censusVersion {
		return nil
	}
	m := make(map[string]*censusGroup, len(snap.Groups))
	for i := range snap.Groups {
		g := &snap.Groups[i]
		m[g.Sig] = g
	}
	return m
}

// restoreCensus replays a persisted group census into a freshly constructed
// lazy tree: the memo table is prefilled with completed entries and the
// tree is sealed with the persisted totals, so no counting pass runs.
func restoreCensus(t *Tree, lt *lazyTree, g *censusGroup) {
	for i := range g.Entries {
		en := &g.Entries[i]
		e, sh, existed := lt.counts.lookup(en.K)
		if existed {
			continue
		}
		e.count, e.vertices, e.width = en.C, en.V, en.W
		sh.complete(e)
	}
	lt.total = g.Total
	lt.sealed = true
	t.total = g.Total
	t.checks = g.Checks
	t.memoHits = g.Hits
	t.memoMisses = g.Misses
	t.logicalNodes = g.Logical
	t.uniqueNodes = g.Unique
	mCensusRestored.Inc()
}
