// GEMM: tune CLBlast's XgemmDirect kernel (10 parameters, 17
// interdependencies) for one of the paper's deep-learning input sizes and
// compare the tuned configuration against the kernel's built-in defaults —
// a miniature of the paper's Section VI evaluation.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"atf"
	"atf/internal/clblast"
	"atf/internal/opencl"
)

func main() {
	device := flag.String("device", "K20m", "simulated device (K20m, K20c, Xeon)")
	is := flag.Int("is", 4, "Caffe input size 1-4")
	evals := flag.Uint64("evals", 400, "annealing evaluation budget")
	flag.Parse()

	shapes := clblast.CaffeInputSizes()
	if *is < 1 || *is > len(shapes) {
		log.Fatalf("input size must be 1..%d", len(shapes))
	}
	shape := shapes[*is-1]

	dev, err := opencl.FindDevice("", *device)
	if err != nil {
		log.Fatal(err)
	}
	eval := clblast.NewGemmEvaluator(dev, shape, 1)

	// The full constrained space: no artificial range limits and no
	// global-size divisibility constraints — CLBlast pads the global size
	// arithmetically, which ATF can express (paper, Section III).
	params := clblast.XgemmDirectParams(clblast.SpaceOptions{
		MaxWorkGroupSize: int64(dev.Desc.MaxWorkGroupSize),
		LocalMemBytes:    int64(dev.Desc.LocalMemBytes),
	})

	fmt.Printf("tuning XgemmDirect for %s on %s\n", shape, dev.Name())
	start := time.Now()
	res, err := atf.Tuner{
		Technique:  atf.SimulatedAnnealing(),
		Abort:      atf.Evaluations(*evals),
		CacheCosts: true,
	}.Tune(eval.CostFunction(), params...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("space: %d valid configurations (raw %s), generated+tuned in %v\n",
		res.SpaceSize, res.RawSpaceSize, time.Since(start).Round(time.Millisecond))

	defNs, err := eval.Eval(clblast.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel defaults: %.3f ms (simulated)\n", defNs/1e6)
	fmt.Printf("ATF best:        %.3f ms  -> %.2fx speedup\n",
		res.BestCost.Primary()/1e6, defNs/res.BestCost.Primary())
	fmt.Printf("best config:     %s\n", res.Best)

	// Optional correctness check of the winner (ATF's OpenCL cost
	// function "can support error checking for the computed results").
	maxErr, err := eval.Verify(res.Best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification:    max |error| vs naive GEMM = %g\n", maxErr)
}
