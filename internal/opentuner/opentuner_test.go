package opentuner

import (
	"math"
	"math/rand"
	"testing"

	"atf/internal/core"
)

func TestDomainEncodeDecode(t *testing.T) {
	d := NewDomain(10, 4, 2)
	if d.Dims() != 3 {
		t.Fatal("dims wrong")
	}
	for _, coords := range [][]uint64{{0, 0, 0}, {9, 3, 1}, {5, 2, 0}} {
		got := d.Decode(d.Encode(coords))
		for i := range coords {
			if got[i] != coords[i] {
				t.Fatalf("roundtrip %v -> %v", coords, got)
			}
		}
	}
}

func TestDomainClamp(t *testing.T) {
	d := NewDomain(10)
	p := d.Clamp(Point{-0.5})
	if p[0] != 0 {
		t.Error("negative should clamp to 0")
	}
	p = d.Clamp(Point{1.7})
	if p[0] >= 1 {
		t.Error("overflow should clamp below 1")
	}
	if d.Decode(Point{1 - 1e-12})[0] != 9 {
		t.Error("top of range should decode to Card-1")
	}
}

func TestDomainZeroCardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDomain(5, 0)
}

func TestAUCBanditPrefersWinningArm(t *testing.T) {
	b := NewAUCBandit(3)
	// Arm 1 improves half the time; the others never do.
	for i := 0; i < 300; i++ {
		arm := b.Select()
		b.Record(arm, arm == 1 && i%2 == 0)
	}
	if b.Uses(1) <= b.Uses(0) || b.Uses(1) <= b.Uses(2) {
		t.Fatalf("bandit should favour arm 1: uses = %d/%d/%d",
			b.Uses(0), b.Uses(1), b.Uses(2))
	}
}

func TestAUCBanditTriesAllArmsFirst(t *testing.T) {
	b := NewAUCBandit(4)
	seen := make(map[int]bool)
	for i := 0; i < 4; i++ {
		arm := b.Select()
		seen[arm] = true
		b.Record(arm, false)
	}
	if len(seen) != 4 {
		t.Fatalf("all arms must be tried once before exploitation, saw %v", seen)
	}
}

func TestAUCBanditWindowForgets(t *testing.T) {
	b := NewAUCBandit(1)
	b.Window = 10
	for i := 0; i < 20; i++ {
		b.Record(0, true)
	}
	if b.arms[0].auc() != 1 {
		t.Fatal("all-success window should score 1")
	}
	for i := 0; i < 10; i++ {
		b.Record(0, false)
	}
	if b.arms[0].auc() != 0 {
		t.Fatal("window should have forgotten old successes")
	}
}

func TestAUCBanditRecencyWeighting(t *testing.T) {
	recent := &armState{outcomes: []bool{false, false, true, true}}
	old := &armState{outcomes: []bool{true, true, false, false}}
	if recent.auc() <= old.auc() {
		t.Fatalf("recent successes must outweigh old ones: %v vs %v",
			recent.auc(), old.auc())
	}
}

// sphere is a d-dimensional continuous test function with minimum at m.
func sphere(m []float64) func(coords []uint64, card []uint64) float64 {
	return func(coords []uint64, card []uint64) float64 {
		var s float64
		for i, c := range coords {
			x := float64(c) / float64(card[i]-1)
			d := x - m[i]
			s += d * d
		}
		return s
	}
}

func runEngine(t *testing.T, techs []SubTechnique, evals int, seed int64) float64 {
	t.Helper()
	card := []uint64{101, 101, 101}
	d := NewDomain(card...)
	f := sphere([]float64{0.3, 0.7, 0.5})
	e := NewEngine(d, techs, seed)
	for i := 0; i < evals; i++ {
		p := e.Next()
		e.Report(p, f(d.Decode(p), card))
	}
	_, cost, ok := e.Best()
	if !ok {
		t.Fatal("engine found nothing")
	}
	return cost
}

func TestEngineOptimizesSphere(t *testing.T) {
	cost := runEngine(t, nil, 600, 17)
	if cost > 0.01 {
		t.Fatalf("ensemble should approach the sphere optimum, got %v", cost)
	}
}

func TestEngineBeatsPureRandom(t *testing.T) {
	// Averaged over seeds, the ensemble must beat random-only on a smooth
	// function — the point of model-based techniques.
	var ens, rnd float64
	for seed := int64(1); seed <= 5; seed++ {
		ens += runEngine(t, nil, 300, seed)
		rnd += runEngine(t, []SubTechnique{NewRandomTechnique()}, 300, seed)
	}
	if ens >= rnd {
		t.Fatalf("ensemble (%v) should beat pure random (%v)", ens, rnd)
	}
}

func TestNelderMeadConverges1D(t *testing.T) {
	card := []uint64{1001}
	d := NewDomain(card...)
	nm := NewNelderMead("random")
	nm.Init(d, rand.New(rand.NewSource(2)))
	f := sphere([]float64{0.42})
	best := math.Inf(1)
	for i := 0; i < 200; i++ {
		p := nm.Propose(nil, math.Inf(1))
		c := f(d.Decode(p), card)
		if c < best {
			best = c
		}
		nm.Report(p, c)
	}
	if best > 0.001 {
		t.Fatalf("Nelder-Mead 1D best = %v", best)
	}
}

func TestNelderMeadSeededVariantUsesBest(t *testing.T) {
	d := NewDomain(1000, 1000)
	nm := NewNelderMead("seeded")
	nm.Init(d, rand.New(rand.NewSource(3)))
	best := Point{0.25, 0.75}
	p := nm.Propose(best, 1.0)
	// First seeded proposal clones the best point exactly.
	if p[0] != 0.25 || p[1] != 0.75 {
		t.Fatalf("seeded variant should start from the global best, got %v", p)
	}
}

func TestTorczonConverges(t *testing.T) {
	card := []uint64{501, 501}
	d := NewDomain(card...)
	tz := NewTorczon()
	tz.Init(d, rand.New(rand.NewSource(4)))
	f := sphere([]float64{0.6, 0.2})
	best := math.Inf(1)
	for i := 0; i < 400; i++ {
		p := tz.Propose(nil, math.Inf(1))
		c := f(d.Decode(p), card)
		if c < best {
			best = c
		}
		tz.Report(p, c)
	}
	if best > 0.01 {
		t.Fatalf("Torczon best = %v", best)
	}
}

func TestGreedyMutationStaysNearBest(t *testing.T) {
	d := NewDomain(1000, 1000, 1000)
	gm := NewGreedyMutation(true)
	gm.Init(d, rand.New(rand.NewSource(5)))
	best := Point{0.5, 0.5, 0.5}
	far := 0
	for i := 0; i < 200; i++ {
		p := gm.Propose(best, 1)
		var dist float64
		for j := range p {
			dd := p[j] - best[j]
			dist += dd * dd
		}
		if math.Sqrt(dist) > 0.5 {
			far++
		}
	}
	if far > 20 {
		t.Fatalf("normal mutation wandered far %d/200 times", far)
	}
}

func TestGreedyMutationAlwaysMutates(t *testing.T) {
	d := NewDomain(1000)
	gm := NewGreedyMutation(false)
	gm.Rate = 0 // even at rate 0, at least one coordinate must mutate
	gm.Init(d, rand.New(rand.NewSource(6)))
	best := Point{0.5}
	same := 0
	for i := 0; i < 50; i++ {
		p := gm.Propose(best, 1)
		if p[0] == 0.5 {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("mutation returned the unchanged best %d/50 times", same)
	}
}

func TestIndexTechniqueTunesATFSpace(t *testing.T) {
	// The Section IV-C adapter: engine over TP ∈ [0,S) of a valid-only
	// space. Every configuration it proposes must satisfy the constraints.
	const n = 64
	sp, err := core.GenerateFlat([]*core.Param{
		core.NewParam("WPT", core.NewInterval(1, n), core.Divides(n)),
		core.NewParam("LS", core.NewInterval(1, n),
			core.Divides(func(c *core.Config) int64 { return n / c.Int("WPT") })),
	}, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cf := core.ScalarCostFunc(func(cfg *core.Config) float64 {
		// Prefer WPT=8, LS=4.
		return math.Abs(float64(cfg.Int("WPT"))-8)*10 + math.Abs(float64(cfg.Int("LS"))-4)
	})
	res, err := core.Explore(sp, NewIndexTechnique(), cf, core.Evaluations(200),
		core.ExploreOptions{Seed: 7, OnEvaluation: func(ev core.Evaluation) {
			wpt := ev.Config.Int("WPT")
			if n%wpt != 0 {
				t.Fatalf("invalid config proposed: %v", ev.Config)
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid != res.Evaluations {
		t.Fatal("all index-space proposals must be valid")
	}
	if res.Best.Int("WPT") != 8 {
		t.Fatalf("best = %v, want WPT=8", res.Best)
	}
}

func TestRawTunerPenalizesInvalid(t *testing.T) {
	// §VI-B: on a space where valid configurations are a tiny fraction,
	// the raw-space baseline mostly burns evaluations on penalties.
	const n = 97 // prime: only WPT ∈ {1, 97} divide it
	params := []*core.Param{
		core.NewParam("WPT", core.NewInterval(1, n), core.Divides(n)),
		core.NewParam("LS", core.NewInterval(1, n),
			core.Divides(func(c *core.Config) int64 { return n / c.Int("WPT") })),
	}
	rt := &RawTuner{Params: params}
	cf := core.ScalarCostFunc(func(cfg *core.Config) float64 { return float64(cfg.Int("LS")) })
	res, err := rt.Tune(cf, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 500 {
		t.Fatalf("evaluations = %d", res.Evaluations)
	}
	if res.ValidEvals >= res.Evaluations/2 {
		t.Fatalf("valid fraction suspiciously high: %d/%d", res.ValidEvals, res.Evaluations)
	}
	if res.Best != nil {
		// Whatever it found must actually be valid.
		if n%res.Best.Int("WPT") != 0 {
			t.Fatalf("reported best is invalid: %v", res.Best)
		}
	}
}

func TestRawTunerFindsValidOnEasySpace(t *testing.T) {
	// When most configurations are valid, the baseline works fine — the
	// paper's point is about constraint-riddled spaces specifically.
	params := []*core.Param{
		core.NewParam("a", core.NewInterval(1, 16)),
		core.NewParam("b", core.NewInterval(1, 16)),
	}
	rt := &RawTuner{Params: params}
	cf := core.ScalarCostFunc(func(cfg *core.Config) float64 {
		return float64(cfg.Int("a") + cfg.Int("b"))
	})
	res, err := rt.Tune(cf, 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("unconstrained space: baseline must find something")
	}
	if res.ValidEvals != res.Evaluations {
		t.Fatal("everything is valid here")
	}
	if res.BestCost.Primary() > 6 {
		t.Fatalf("best cost %v too high for 300 evals on 256 configs", res.BestCost)
	}
}

func TestEngineTechniqueUseAccounting(t *testing.T) {
	d := NewDomain(100)
	e := NewEngine(d, nil, 1)
	card := []uint64{100}
	f := sphere([]float64{0.5})
	for i := 0; i < 60; i++ {
		p := e.Next()
		e.Report(p, f(d.Decode(p), card))
	}
	uses := e.TechniqueUse()
	total := 0
	for _, u := range uses {
		total += u
	}
	if total != 60 {
		t.Fatalf("use counts sum to %d, want 60", total)
	}
	if e.Evaluations() != 60 {
		t.Fatal("evaluation count wrong")
	}
}
