package server

import (
	"atf/internal/obs"
)

// sessionMetrics is one session's private obs registry: the counters and
// histograms behind GET /v1/sessions/{id}/stats. Process-wide totals
// (across all sessions and the embedded tuner internals) live in
// obs.Default() and are served by GET /metrics; the per-session registry
// answers the operator question the global one cannot — "what is THIS
// run doing" — without labels or cardinality tricks.
type sessionMetrics struct {
	registry *obs.Registry

	evaluations *obs.Counter
	cached      *obs.Counter
	failed      *obs.Counter
	valid       *obs.Counter
	journalErrs *obs.Counter
	// cost is the distribution of reported (simulated) kernel costs in
	// seconds — the per-configuration timing CLTune prints as its core
	// output, here as a scrapeable histogram.
	cost *obs.Histogram
	// commitLatency is the evaluation-start→commit latency in seconds
	// (Evaluation.At deltas), i.e. how fast the session is advancing.
	commitLatency *obs.Histogram
}

func newSessionMetrics() *sessionMetrics {
	r := obs.NewRegistry()
	return &sessionMetrics{
		registry: r,
		evaluations: r.NewCounter("session_evaluations_total",
			"Evaluations committed by this session (including the resumed prefix)"),
		cached: r.NewCounter("session_evaluations_cached_total",
			"Committed evaluations served from the cost cache"),
		failed: r.NewCounter("session_evaluations_failed_total",
			"Committed evaluations whose cost function errored"),
		valid: r.NewCounter("session_valid_total",
			"Committed evaluations with finite cost"),
		journalErrs: r.NewCounter("session_journal_errors_total",
			"Failed journal appends (the run keeps going; resume loses these records)"),
		cost: r.NewHistogram("session_cost_seconds",
			"Reported per-configuration cost (simulated kernel time)", nil),
		commitLatency: r.NewHistogram("session_commit_gap_seconds",
			"Gap between consecutive evaluation commits", nil),
	}
}

// record folds one committed evaluation record into the session metrics.
// prevAtNs is the previous record's At timestamp (0 for the first).
func (m *sessionMetrics) record(rec *EvalRecord, prevAtNs int64) {
	m.evaluations.Inc()
	if rec.Cached {
		m.cached.Inc()
	}
	if rec.Error != "" {
		m.failed.Inc()
	}
	if len(rec.Cost) > 0 && !rec.Cost.IsInf() {
		m.valid.Inc()
		m.cost.Observe(rec.Cost.Primary() / 1e9)
	}
	if rec.AtNs > prevAtNs {
		m.commitLatency.Observe(float64(rec.AtNs-prevAtNs) / 1e9)
	}
}

// StatsResponse is the body of GET /v1/sessions/{id}/stats: the status
// snapshot plus the session's metric registry.
type StatsResponse struct {
	Status  Status       `json:"status"`
	Metrics obs.Snapshot `json:"metrics"`
}

// Stats snapshots the session's status and metrics together.
func (s *Session) Stats() StatsResponse {
	return StatsResponse{Status: s.Status(), Metrics: s.metrics.registry.Snapshot()}
}
