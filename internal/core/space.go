package core

import (
	"fmt"
	"math/big"
	"math/bits"
	"math/rand"
)

// Space is the generated search space: the cross product of per-group
// sub-space tries. Configurations are addressable by a dense index in
// [0, Size()), which is what ATF's simulated-annealing neighbourhood and
// its OpenTuner adapter (single index parameter TP ∈ [1,S], Section IV-C)
// operate on.
type Space struct {
	trees  []*Tree
	names  []string
	params []*Param
	size   uint64
}

// Size returns the number of valid configurations.
func (s *Space) Size() uint64 { return s.size }

// Names returns all parameter names in declaration order.
func (s *Space) Names() []string { return s.names }

// Params returns all parameters in declaration order.
func (s *Space) Params() []*Param { return s.params }

// Groups returns the per-group sub-space trees.
func (s *Space) Groups() []*Tree { return s.trees }

// Checks returns the total number of constraint evaluations generation
// performed across all groups (experiment E3 instrumentation).
func (s *Space) Checks() uint64 {
	var c uint64
	for _, t := range s.trees {
		c += t.checks
	}
	return c
}

// NodeCount returns the total number of *logical* trie nodes across groups
// (the fully expanded prefix tree); with the per-config value count it
// quantifies the trie's memory advantage over a materialized configuration
// list (DESIGN.md §6 ablation). See NodeCounts for the logical/unique
// distinction introduced by subtree memoization.
func (s *Space) NodeCount() int {
	logical, _ := s.NodeCounts()
	return int(logical)
}

// NodeCounts returns the aggregate trie vertex counts across groups:
// logical is the expanded prefix-tree size, unique the number of arena
// entries actually stored after dependency-aware subtree sharing (equal
// when memoization is off; see Tree.Nodes).
func (s *Space) NodeCounts() (logical, unique uint64) {
	for _, t := range s.trees {
		l, u := t.Nodes()
		logical += l
		unique += u
	}
	return logical, unique
}

// MemoStats returns the aggregate subtree-memoization hit/miss counts of
// the generation that produced this space.
func (s *Space) MemoStats() (hits, misses uint64) {
	for _, t := range s.trees {
		h, m := t.MemoStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// ArenaBytes returns the total memory footprint of the flattened trie
// arenas across groups.
func (s *Space) ArenaBytes() uint64 {
	var b uint64
	for _, t := range s.trees {
		b += t.ArenaBytes()
	}
	return b
}

// LazyGroups returns how many group sub-spaces use lazy (streaming)
// construction.
func (s *Space) LazyGroups() int {
	n := 0
	for _, t := range s.trees {
		if t.Lazy() {
			n++
		}
	}
	return n
}

// LazyStats returns the aggregate lazy-construction counters across
// groups: sibling blocks expanded on first touch, slabs evicted by the
// arena byte budget, and the bytes currently resident in expanded slabs.
// All zero for fully eager spaces.
func (s *Space) LazyStats() (expansions, evictions, residentBytes uint64) {
	for _, t := range s.trees {
		e, v, r := t.LazyStats()
		expansions += e
		evictions += v
		residentBytes += r
	}
	return expansions, evictions, residentBytes
}

// RawSize returns the size of the *unconstrained* Cartesian product of all
// raw parameter ranges. For XgemmDirect at 2^10×2^10 this exceeds 10^19
// (paper §VI-A), hence the big.Int.
func (s *Space) RawSize() *big.Int {
	total := big.NewInt(1)
	for _, p := range s.params {
		total.Mul(total, big.NewInt(int64(p.Range.Len())))
	}
	return total
}

// At returns the configuration with the given index. Indices decompose in
// mixed radix over the group sub-space sizes (first group varies slowest),
// then each group trie resolves its sub-index in O(depth · branching).
func (s *Space) At(idx uint64) *Config {
	if idx >= s.size {
		panic(fmt.Sprintf("core: configuration index %d out of range (size %d)", idx, s.size))
	}
	cfg := NewConfig(s.names)
	offset := len(s.names)
	for i := len(s.trees) - 1; i >= 0; i-- {
		t := s.trees[i]
		sub := idx % t.total
		idx /= t.total
		offset -= len(t.params)
		t.fill(sub, cfg, offset)
	}
	cfg.filled = len(s.names)
	return cfg
}

// IndexOf returns the index of a complete configuration and whether the
// configuration is a member of the space.
func (s *Space) IndexOf(cfg *Config) (uint64, bool) {
	if cfg.Len() != len(s.names) {
		return 0, false
	}
	var idx uint64
	offset := 0
	for _, t := range s.trees {
		sub, ok := t.indexOf(cfg, offset)
		if !ok {
			return 0, false
		}
		idx = idx*t.total + sub
		offset += len(t.params)
	}
	return idx, true
}

// Random returns a uniformly random configuration.
func (s *Space) Random(rng *rand.Rand) *Config {
	return s.At(s.RandomIndex(rng))
}

// RandomIndex returns a uniformly random configuration index.
func (s *Space) RandomIndex(rng *rand.Rand) uint64 {
	if s.size == 0 {
		panic("core: sampling from empty search space")
	}
	if s.size <= uint64(1)<<62 {
		return uint64(rng.Int63n(int64(s.size)))
	}
	// Rejection sampling for astronomically large spaces.
	for {
		v := rng.Uint64()
		if v < s.size {
			return v
		}
	}
}

// Neighbor returns a configuration index near idx: a step whose magnitude
// is scale-free (each power-of-two length scale equally likely, up to the
// space size), in either direction, wrapping at the space boundary.
// Index-space locality approximates parameter-space locality because the
// trie orders configurations lexicographically by parameter value — nearby
// indices share long parameter prefixes — while the occasional long jump
// lets annealing escape basins of attraction.
func (s *Space) Neighbor(idx uint64, rng *rand.Rand) uint64 {
	if s.size <= 1 {
		return idx
	}
	maxExp := bits.Len64(s.size - 1) // number of length scales available
	e := rng.Intn(maxExp)
	step := uint64(1)<<e + uint64(rng.Int63n(int64(uint64(1)<<e)))
	step %= s.size
	if step == 0 {
		step = 1
	}
	if rng.Intn(2) == 0 {
		return (idx + step) % s.size
	}
	return (idx + s.size - step) % s.size
}

// ForEach calls fn for every configuration in index order, stopping early
// if fn returns false. The passed configuration is reused across calls;
// clone it to retain.
func (s *Space) ForEach(fn func(idx uint64, cfg *Config) bool) {
	cfg := NewConfig(s.names)
	for idx := uint64(0); idx < s.size; idx++ {
		s.fillAt(idx, cfg)
		if !fn(idx, cfg) {
			return
		}
	}
}

// fillAt decodes idx into an existing configuration, avoiding allocation.
func (s *Space) fillAt(idx uint64, cfg *Config) {
	offset := len(s.names)
	for i := len(s.trees) - 1; i >= 0; i-- {
		t := s.trees[i]
		sub := idx % t.total
		idx /= t.total
		offset -= len(t.params)
		t.fill(sub, cfg, offset)
	}
	cfg.filled = len(s.names)
}
