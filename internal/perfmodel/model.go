package perfmodel

import (
	"fmt"
	"hash/fnv"
	"math"

	"atf/internal/oclc"
)

// Estimate is the simulated runtime of one kernel launch, with the
// breakdown the ablation benches inspect.
type Estimate struct {
	TimeNs float64

	ComputeNsPerWG float64
	MemoryNsPerWG  float64
	Waves          int64
	ConcurrentWGs  int64
	Transactions   int64 // memory transactions per work-group
	CoalesceEff    float64
	Occupancy      float64
}

// Model evaluates launches against one device.
type Model struct {
	Dev *Device
	// Jitter adds a deterministic pseudo-random perturbation of the given
	// relative magnitude (e.g. 0.02 = ±2%), seeded by the launch
	// signature — real measurements are noisy, and tuners must cope.
	Jitter float64
}

// EstimateLaunch computes the simulated time of a kernel launch from the
// sampled execution result. res must come from at least one executed
// work-group; counters are normalized to one work-group and scaled
// analytically to the full NDRange.
func (m *Model) EstimateLaunch(cfg oclc.LaunchConfig, res *oclc.ExecResult, sig string) (*Estimate, error) {
	d := m.Dev
	wgSize := cfg.WorkGroupSize()
	if wgSize > int64(d.MaxWorkGroupSize) {
		return nil, fmt.Errorf("perfmodel: work-group size %d exceeds device maximum %d (CL_INVALID_WORK_GROUP_SIZE)",
			wgSize, d.MaxWorkGroupSize)
	}
	if res.LocalBytes > int64(d.LocalMemBytes) {
		return nil, fmt.Errorf("perfmodel: __local usage %d exceeds device local memory %d (CL_OUT_OF_RESOURCES)",
			res.LocalBytes, d.LocalMemBytes)
	}
	if res.GroupsExecuted == 0 {
		return nil, fmt.Errorf("perfmodel: no executed work-groups to sample")
	}

	numWGs := cfg.NumGroups()
	scale := 1 / float64(res.GroupsExecuted)
	c := res.Counters

	// --- memory transactions and coalescing ---------------------------
	// Both counts are per work-group (the log samples the first group).
	trans, ideal := m.transactions(res, wgSize)
	coalesce := 1.0
	if trans > 0 {
		coalesce = float64(ideal) / float64(trans)
		if coalesce > 1 {
			coalesce = 1
		}
	}

	// --- compute time per work-group ----------------------------------
	// Counters are totals over the sampled group's work-items; lockstep
	// SIMD execution retires SIMDWidth lanes per issued instruction, IPC
	// instructions per cycle.
	weighted := float64(c.IntOps)*1 +
		float64(c.FloatOps)*1 +
		float64(c.FMAs)*1 +
		float64(c.SpecialOps)*8 +
		float64(c.LocalLoads+c.LocalStores)*d.LocalAccessCycles +
		float64(c.PrivateAccess)*0.25 +
		float64(c.Branches)*1 +
		float64(c.LoopIters)*2 +
		float64(c.UnrolledIters)*0.5
	weighted *= scale

	simdEff := float64(d.SIMDWidth)
	if d.Type == CPU {
		// Auto-vectorization only pays off on coalescable (unit-stride)
		// access patterns; scattered patterns execute scalar.
		simdEff = 1 + (float64(d.SIMDWidth)-1)*coalesce
	} else {
		// Partially filled warps still occupy full warp slots.
		lanes := float64(wgSize)
		batches := math.Ceil(lanes / float64(d.SIMDWidth))
		simdEff = float64(d.SIMDWidth) * (lanes / (batches * float64(d.SIMDWidth)))
	}
	cycles := weighted / (simdEff * d.IPC)

	batchesPerWG := math.Ceil(float64(wgSize) / float64(d.SIMDWidth))
	barrierEvents := float64(c.Barriers) * scale / float64(wgSize) // per WG
	var barrierNs float64
	if d.BarrierSwitchNs > 0 {
		// Software barriers (CPU): every work-item fiber is switched at
		// each barrier, and beyond BarrierThrashWIs the stacks fall out
		// of the core's cache, so the per-switch cost grows with the
		// group size. This is what makes GPU-style large work-groups
		// disproportionately expensive on CPUs.
		thrash := 1 + float64(wgSize)/float64(d.BarrierThrashWIs)
		barrierNs = barrierEvents * float64(wgSize) * d.BarrierSwitchNs * thrash
	} else {
		// Hardware barriers (GPU): one SIMD-batch drain per barrier.
		cycles += barrierEvents * batchesPerWG * 20
	}

	computeNs := cycles/d.ClockGHz + barrierNs

	// --- occupancy ------------------------------------------------------
	wgPerCU := int64(d.MaxWGsPerCU)
	if byWI := int64(d.MaxWIsPerCU) / wgSize; byWI < wgPerCU {
		wgPerCU = byWI
	}
	if res.LocalBytes > 0 {
		if byLocal := int64(d.LocalMemBytes) / res.LocalBytes; byLocal < wgPerCU {
			wgPerCU = byLocal
		}
	}
	if wgPerCU < 1 {
		wgPerCU = 1
	}
	concurrent := wgPerCU * int64(d.ComputeUnits)
	if concurrent > numWGs {
		concurrent = numWGs
	}
	waves := (numWGs + concurrent - 1) / concurrent
	occupancy := float64(concurrent) / float64(wgPerCU*int64(d.ComputeUnits))

	// --- memory time per work-group -------------------------------------
	activeCUs := float64(concurrent)
	if activeCUs > float64(d.ComputeUnits) {
		activeCUs = float64(d.ComputeUnits)
	}
	perCUBandwidth := d.MemBandwidthGBs / activeCUs // GB/s == bytes/ns
	transPerWG := float64(trans)
	bytesPerWG := transPerWG * float64(d.CacheLineBytes)
	memNs := bytesPerWG / perCUBandwidth
	// Latency of the first (non-overlapped) access per dependent chain;
	// deep multithreading on GPUs hides most of it.
	latencyHide := 0.9
	if d.Type == CPU {
		latencyHide = 0.6
	}
	memNs += transPerWG * d.MemLatencyNs * (1 - latencyHide) / batchesPerWG

	// Compute and memory overlap; the slower stream dominates (roofline).
	wgNs := math.Max(computeNs, memNs)

	total := d.KernelLaunchNs + float64(waves)*wgNs + float64(numWGs)*d.WGScheduleNs

	if m.Jitter > 0 {
		total *= 1 + m.Jitter*signedHash(sig)
	}

	return &Estimate{
		TimeNs:         total,
		ComputeNsPerWG: computeNs,
		MemoryNsPerWG:  memNs,
		Waves:          waves,
		ConcurrentWGs:  concurrent,
		Transactions:   int64(transPerWG),
		CoalesceEff:    coalesce,
		Occupancy:      occupancy,
	}, nil
}

// transactions derives per-work-group memory transactions from the access
// log (which samples the first executed group): work-items execute in SIMD
// batches; the k-th dynamic access of a site by all work-items of a batch
// issues together, and the number of distinct cache lines touched is the
// number of transactions. Without a log (functional runs), a neutral 50%
// coalescing efficiency is assumed. Both return values are per work-group.
func (m *Model) transactions(res *oclc.ExecResult, wgSize int64) (trans, ideal int64) {
	line := int64(m.Dev.CacheLineBytes)
	elem := int64(4)
	totalAccesses := res.Counters.GlobalLoads + res.Counters.GlobalStores
	perGroup := totalAccesses / max64(res.GroupsExecuted, 1)
	// Ideal: perfectly dense unit-stride traffic.
	ideal = ceilDiv(perGroup*elem, line)
	if ideal == 0 {
		ideal = 1
	}
	if res.Log == nil {
		return ideal * 2, ideal // assume 50% efficiency
	}

	simd := int64(m.Dev.SIMDWidth)
	lines := make(map[uint64]struct{}, simd)
	for _, perWI := range res.Log.SiteAccesses() {
		if perWI == nil {
			continue
		}
		maxLen := 0
		for _, as := range perWI {
			if len(as) > maxLen {
				maxLen = len(as)
			}
		}
		batches := (wgSize + simd - 1) / simd
		for b := int64(0); b < batches; b++ {
			for k := 0; k < maxLen; k++ {
				clear(lines)
				for wi := b * simd; wi < (b+1)*simd && wi < wgSize; wi++ {
					if int(wi) < len(perWI) {
						if as := perWI[int(wi)]; k < len(as) {
							lines[as[k]/uint64(line)] = struct{}{}
						}
					}
				}
				trans += int64(len(lines))
			}
		}
	}
	if trans == 0 {
		trans = ideal
	}
	return trans, ideal
}

// signedHash maps a string to a deterministic value in [-1, 1].
func signedHash(s string) float64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	v := h.Sum64()
	return (float64(v%2000001)/1000000 - 1)
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
