// Command atf-loadgen drives a running atfd with many concurrent tuning
// sessions and reports multi-tenant throughput: sessions per second,
// evaluation throughput, create/status latency percentiles, and the
// cross-session cache hit rates scraped from the daemon's /metrics — the
// numbers behind results/loadgen.md.
//
// Usage:
//
//	atfd -addr 127.0.0.1:7521 -journal-dir /tmp/j &
//	atf-loadgen -daemon http://127.0.0.1:7521 -sessions 500
//
// Every client submits the same spec (a small saxpy kernel tuning by
// default, or -spec FILE), so the daemon's shared caches — compiled
// kernels, cost outcomes, generated spaces — see maximal cross-session
// overlap; -min-shared-hits N turns the expected sharing into an
// assertion. 429 responses from admission control are honored: the
// client waits out Retry-After (capped by -max-retry-wait) and retries,
// so an overloaded daemon slows the load down instead of failing it.
//
// -bench prints the headline numbers as `go test -bench`-style lines for
// scripts/bench2json.sh; -md prints a markdown row block for pasting
// into results/loadgen.md.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// defaultSpec tunes the saxpy kernel over a tiny divides-constrained
// space: 12 valid configurations, each of which compiles a distinct
// kernel variant. Identical across sessions, so session 2..N should be
// answered almost entirely from the daemon's shared caches.
const defaultSpec = `{
	"name": "loadgen saxpy",
	"parameters": [
		{"name": "WPT", "range": {"interval": {"begin": 1, "end": 64}},
		 "constraints": [{"op": "divides", "expr": "64"}]},
		{"name": "LS", "range": {"interval": {"begin": 1, "end": 64}},
		 "constraints": [{"op": "divides", "expr": "64 / WPT"}]}
	],
	"cost": {"kind": "saxpy", "device": "K20c", "n": 64},
	"technique": {"kind": "exhaustive"},
	"abort": {"evaluations": 12},
	"parallelism": 2
}`

func main() {
	daemon := flag.String("daemon", "http://127.0.0.1:7521", "base URL of the atfd under load")
	sessions := flag.Int("sessions", 500, "tuning sessions to run")
	concurrency := flag.Int("concurrency", 0, "client goroutines; 0 = one per session")
	specPath := flag.String("spec", "", "spec file every client submits (default: built-in saxpy)")
	poll := flag.Duration("poll", 5*time.Millisecond, "status poll interval")
	maxRetryWait := flag.Duration("max-retry-wait", time.Second, "cap on honoring a 429 Retry-After")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	minSharedHits := flag.Int64("min-shared-hits", -1,
		"fail unless shared cost-cache + compile-cache hits grew at least this much; -1 disables")
	bench := flag.Bool("bench", false, "also print go test -bench style lines (scripts/bench2json.sh)")
	md := flag.Bool("md", false, "also print a markdown table for results/loadgen.md")
	flag.Parse()

	spec := []byte(defaultSpec)
	if *specPath != "" {
		b, err := os.ReadFile(*specPath)
		if err != nil {
			fail(err)
		}
		spec = b
	}
	httpc := &http.Client{Timeout: 30 * time.Second}

	before, err := scrapeMetrics(httpc, *daemon)
	if err != nil {
		fail(fmt.Errorf("scraping %s/metrics: %w", *daemon, err))
	}

	workers := *concurrency
	if workers <= 0 || workers > *sessions {
		workers = *sessions
	}
	var (
		mu         sync.Mutex
		createLats []time.Duration
		statusLats []time.Duration
		sessLats   []time.Duration // create -> done, in completion order
		retries    int
		failures   []string
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(*timeout)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				res, err := runSession(httpc, *daemon, spec, *poll, *maxRetryWait, deadline)
				mu.Lock()
				if err != nil {
					failures = append(failures, err.Error())
				} else {
					createLats = append(createLats, res.create)
					statusLats = append(statusLats, res.status...)
					sessLats = append(sessLats, res.total)
				}
				retries += res.retries
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *sessions; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	after, err := scrapeMetrics(httpc, *daemon)
	if err != nil {
		fail(fmt.Errorf("scraping %s/metrics: %w", *daemon, err))
	}
	delta := func(name string) float64 { return after[name] - before[name] }
	rate := func(hits, misses float64) string {
		if hits+misses == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.1f%%", 100*hits/(hits+misses))
	}

	evals := delta("atf_evaluations_total")
	costHits := delta("atf_server_cost_cache_hits_total")
	costMisses := delta("atf_server_cost_cache_misses_total")
	spaceHits := delta("atf_server_space_cache_hits_total")
	spaceMisses := delta("atf_server_space_cache_misses_total")
	compileHits := delta("atf_oclc_compile_cache_hits_total")
	compileMisses := delta("atf_oclc_compile_cache_misses_total")
	rejected := delta("atf_server_sessions_rejected_total")

	done := *sessions - len(failures)
	fmt.Printf("loadgen: %d sessions against %s (%d clients, wall %.2fs)\n",
		*sessions, *daemon, workers, wall.Seconds())
	fmt.Printf("  completed           %d (%d failed)\n", done, len(failures))
	fmt.Printf("  sessions/sec        %.1f\n", float64(done)/wall.Seconds())
	fmt.Printf("  evaluations         %.0f (%.0f/sec)\n", evals, evals/wall.Seconds())
	fmt.Printf("  429 retries         %d (daemon rejected %.0f creates)\n", retries, rejected)
	fmt.Printf("  create latency      p50 %s  p99 %s\n",
		percentile(createLats, 50), percentile(createLats, 99))
	fmt.Printf("  status latency      p50 %s  p99 %s\n",
		percentile(statusLats, 50), percentile(statusLats, 99))
	fmt.Printf("  session turnaround  first %s  median %s\n",
		first(sessLats), percentile(sessLats, 50))
	fmt.Printf("  cost cache          %s hit (%.0f hits / %.0f misses)\n",
		rate(costHits, costMisses), costHits, costMisses)
	fmt.Printf("  space cache         %s hit (%.0f hits / %.0f misses)\n",
		rate(spaceHits, spaceMisses), spaceHits, spaceMisses)
	fmt.Printf("  compile cache       %s hit (%.0f hits / %.0f misses)\n",
		rate(compileHits, compileMisses), compileHits, compileMisses)
	for i, f := range failures {
		if i == 5 {
			fmt.Printf("  ... %d more failures\n", len(failures)-5)
			break
		}
		fmt.Printf("  FAIL: %s\n", f)
	}

	if *bench {
		b := func(name string, v float64) {
			fmt.Printf("BenchmarkLoadgen/%s \t       1\t%.1f ns/op\n", name, v)
		}
		b("create-p99", float64(percentileDur(createLats, 99)))
		b("status-p99", float64(percentileDur(statusLats, 99)))
		b("session-median", float64(percentileDur(sessLats, 50)))
		if evals > 0 {
			b("per-eval", float64(wall.Nanoseconds())/evals)
		}
	}
	if *md {
		fmt.Printf("\n| sessions | clients | sessions/sec | evals/sec | create p99 | status p99 | cost cache | space cache | compile cache | failures |\n")
		fmt.Printf("|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
		fmt.Printf("| %d | %d | %.1f | %.0f | %s | %s | %s | %s | %s | %d |\n",
			*sessions, workers, float64(done)/wall.Seconds(), evals/wall.Seconds(),
			percentile(createLats, 99), percentile(statusLats, 99),
			rate(costHits, costMisses), rate(spaceHits, spaceMisses),
			rate(compileHits, compileMisses), len(failures))
	}

	if len(failures) > 0 {
		fail(fmt.Errorf("%d of %d sessions failed", len(failures), *sessions))
	}
	if *minSharedHits >= 0 && int64(costHits+compileHits) < *minSharedHits {
		fail(fmt.Errorf("shared caches hit %d times, want >= %d — is the daemon running with sharing disabled?",
			int64(costHits+compileHits), *minSharedHits))
	}
}

// sessionResult is one client's timings for one tuning session.
type sessionResult struct {
	create  time.Duration   // the accepted POST /v1/sessions round trip
	status  []time.Duration // every GET /v1/sessions/{id} round trip
	total   time.Duration   // create to terminal state
	retries int             // 429 responses waited out
}

// status is the part of the daemon's session Status the client reads.
type status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

// runSession submits the spec, honoring 429 Retry-After, then polls the
// session to its terminal state.
func runSession(httpc *http.Client, daemon string, spec []byte, poll, maxRetryWait time.Duration, deadline time.Time) (sessionResult, error) {
	var res sessionResult
	begin := time.Now()
	var st status
	for {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("create: deadline exceeded after %d retries", res.retries)
		}
		t0 := time.Now()
		resp, err := httpc.Post(daemon+"/v1/sessions", "application/json", bytes.NewReader(spec))
		if err != nil {
			return res, fmt.Errorf("create: %w", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			res.retries++
			wait := time.Second
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				wait = time.Duration(s) * time.Second
			}
			if wait > maxRetryWait {
				wait = maxRetryWait
			}
			time.Sleep(wait)
			continue
		}
		if resp.StatusCode != http.StatusCreated {
			return res, fmt.Errorf("create: %s: %s", resp.Status, bytes.TrimSpace(body))
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return res, fmt.Errorf("create: decoding status: %w", err)
		}
		res.create = time.Since(t0)
		break
	}

	for {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("session %s: deadline exceeded in state %q", st.ID, st.State)
		}
		t0 := time.Now()
		resp, err := httpc.Get(daemon + "/v1/sessions/" + st.ID)
		if err != nil {
			return res, fmt.Errorf("session %s: %w", st.ID, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return res, fmt.Errorf("session %s: %s: %s", st.ID, resp.Status, bytes.TrimSpace(body))
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return res, fmt.Errorf("session %s: decoding status: %w", st.ID, err)
		}
		res.status = append(res.status, time.Since(t0))
		if st.State != "running" {
			break
		}
		time.Sleep(poll)
	}
	res.total = time.Since(begin)
	if st.State != "done" {
		return res, fmt.Errorf("session %s ended %s (%s)", st.ID, st.State, st.Error)
	}
	return res, nil
}

// scrapeMetrics sums the daemon's Prometheus text metrics by base name
// (labeled series fold into their family).
func scrapeMetrics(httpc *http.Client, daemon string) (map[string]float64, error) {
	resp, err := httpc.Get(daemon + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	// Families like the compile cache export an unlabeled total alongside
	// per-engine labeled series; prefer the total, fold labeled series into
	// the family name only when no total exists.
	out := make(map[string]float64)
	labeled := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			labeled[name[:i]] += v
			continue
		}
		out[name] += v
	}
	for name, v := range labeled {
		if _, ok := out[name]; !ok {
			out[name] = v
		}
	}
	return out, nil
}

func percentileDur(lats []time.Duration, p int) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := (len(s)*p + 99) / 100
	if i > 0 {
		i--
	}
	return s[i]
}

func percentile(lats []time.Duration, p int) string {
	if len(lats) == 0 {
		return "n/a"
	}
	return percentileDur(lats, p).Round(10 * time.Microsecond).String()
}

func first(lats []time.Duration) string {
	if len(lats) == 0 {
		return "n/a"
	}
	return lats[0].Round(10 * time.Microsecond).String()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atf-loadgen:", err)
	os.Exit(1)
}
