package core

import (
	"encoding/binary"
	"math"
	"sync"
)

// Dependency-aware subtree memoization (beyond the HPCC'17 paper; the
// technique follows Willemsen et al., "Efficient Construction of Large
// Search Spaces for Auto-Tuning", arXiv:2509.26253): the subtree of valid
// completions below depth d does not depend on the entire partial
// configuration — only on the values of the parameters that the
// constraints of the *remaining* parameters d..k-1 actually read. Two
// prefixes that agree on that projection have identical completion
// subtrees, so generation computes the subtree once and shares it
// (turning the trie into a DAG, which fill/indexOf traverse unchanged
// because per-node leaf counts are a property of the subtree alone).
//
// For XgemmDirect this collapses most of the ~10M constraint checks: the
// KWID level reads only WGD, so every KWID branch below a fixed WGD shares
// one subtree, and the PADA/PADB tail reads only {WGD, PADA}, so the two
// leaf levels — the bulk of the trie — collapse to one tail per WGD.

// suffixFootprints computes, for every depth d, the sorted positions < d
// of parameters that the constraints (and divisor hints) of parameters
// d..k-1 may read — the memo-key projection. memoable[d] reports whether
// memoizing depth d can pay off: the footprint must be exact (no
// unannotated closure at or below d) and strictly smaller than the whole
// prefix (a full-prefix key is unique per prefix and can never hit).
// Depth 0 is never memoized (it has no prefix and is chunked across
// generation workers). exact[d] reports whether the suffix footprint at d
// is fully declared — lazy construction (lazy.go) keys subtrees on
// foot[d] when exact and must fall back to the full prefix otherwise.
func suffixFootprints(params []*Param) (foot [][]int, memoable, exact []bool) {
	n := len(params)
	foot = make([][]int, n)
	memoable = make([]bool, n)
	exact = make([]bool, n)
	pos := make(map[string]int, n)
	for i, p := range params {
		pos[p.Name] = i
	}
	read := make([]bool, n) // read by any parameter in the suffix [d, n)
	unknown := false        // some parameter in the suffix has an inexact footprint
	for d := n - 1; d >= 0; d-- {
		reads, ex := params[d].Deps()
		if !ex {
			unknown = true
		}
		for _, name := range reads {
			if i, ok := pos[name]; ok && i < d {
				read[i] = true
			}
		}
		exact[d] = !unknown
		if d == 0 {
			break
		}
		if unknown {
			// Conservative: some remaining constraint may read anything
			// declared before it, so the key would be the full prefix.
			continue
		}
		var f []int
		for i := 0; i < d; i++ {
			if read[i] {
				f = append(f, i)
			}
		}
		foot[d] = f
		memoable[d] = len(f) < d
	}
	return foot, memoable, exact
}

// memoKeyAppend encodes (depth, projected values) into buf. The encoding
// is injective: each value is tagged with its kind and either a fixed
// 8-byte payload or a length-prefixed string.
func memoKeyAppend(buf []byte, d int, foot []int, cfg *Config) []byte {
	buf = append(buf, byte(d))
	for _, p := range foot {
		buf = appendValueKey(buf, cfg.At(p))
	}
	return buf
}

// appendValueKey appends one value's injective key encoding: a kind tag
// plus either a fixed 8-byte payload or a length-prefixed string.
func appendValueKey(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.kind))
	switch v.kind {
	case KindString:
		buf = binary.AppendUvarint(buf, uint64(len(v.s)))
		buf = append(buf, v.s...)
	case KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.f))
	default: // KindInt, KindBool
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.i))
	}
	return buf
}

// memoEntry is one memoized subtree. done closes when the computing worker
// has stored nodes/count (or panicked); other workers encountering the key
// while it is in flight wait instead of re-deriving the subtree, which
// keeps unique node counts and constraint-check totals deterministic
// across worker counts.
type memoEntry struct {
	done     chan struct{}
	nodes    []bnode
	count    uint64
	panicked any // non-nil if the computation panicked; re-raised in waiters
}

// memoTable is the per-generation subtree cache shared by all workers of
// one group.
type memoTable struct {
	mu sync.Mutex
	m  map[string]*memoEntry
}

func newMemoTable() *memoTable {
	return &memoTable{m: make(map[string]*memoEntry)}
}

// lookup returns the entry for key and whether it already existed. When it
// did not, the caller owns the returned entry and must fill it and close
// done (also on panic — waiters block on done).
func (t *memoTable) lookup(key []byte) (*memoEntry, bool) {
	t.mu.Lock()
	if e, ok := t.m[string(key)]; ok {
		t.mu.Unlock()
		return e, true
	}
	e := &memoEntry{done: make(chan struct{})}
	t.m[string(key)] = e
	t.mu.Unlock()
	return e, false
}
