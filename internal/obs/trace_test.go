package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
)

// TestTracingDisabled: with no logger installed spans are nil and all
// operations are safe no-ops — the always-on instrumentation cost.
func TestTracingDisabled(t *testing.T) {
	EnableTracing(nil)
	if TracingEnabled() {
		t.Fatal("tracing reported enabled after EnableTracing(nil)")
	}
	sp := StartSpan("noop")
	if sp != nil {
		t.Fatal("StartSpan returned a live span while disabled")
	}
	sp.End()                         // must not panic on nil receiver
	sp.Fail(nil)                     // likewise
	Event("noop", slog.Int("x", 42)) // likewise
}

// TestTracingSpans: an installed logger receives start/end events with
// the span name, duration, and attributes.
func TestTracingSpans(t *testing.T) {
	var buf bytes.Buffer
	EnableTracing(NewTextTracer(&buf, slog.LevelDebug))
	defer EnableTracing(nil)

	sp := StartSpan("spacegen", slog.Int("groups", 2))
	sp.End(slog.Uint64("valid_configs", 17))
	Event("checkpoint", slog.String("session", "s1"))

	out := buf.String()
	for _, want := range []string{
		"span start", "span=spacegen", "groups=2",
		"span end", "elapsed=", "valid_configs=17",
		"checkpoint", "session=s1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q in:\n%s", want, out)
		}
	}
}
