package core

import "atf/internal/obs"

// Process-wide instrumentation of the core hot paths, recorded into the
// obs.Default() registry (exported by atfd's /metrics and the CLI -stats
// summaries). Metric names and semantics are documented in DESIGN.md §3c;
// keep the two in sync.
var (
	// Search-space generation (GenerateSpace / GenerateGroup).
	mSpacegenRuns = obs.NewCounter("atf_spacegen_total",
		"Search-space generations completed")
	mSpacegenSeconds = obs.NewHistogram("atf_spacegen_seconds",
		"Wall-clock time of one search-space generation (tree build)", nil)
	mSpacegenChecks = obs.NewCounter("atf_spacegen_constraint_checks_total",
		"Constraint evaluations performed during space generation")
	mSpacegenConfigs = obs.NewGauge("atf_spacegen_last_valid_configs",
		"Valid configurations in the most recently generated space")
	mSpacegenNodes = obs.NewGauge("atf_spacegen_last_tree_nodes",
		"Logical trie nodes in the most recently generated space")
	mSpacegenUniqueNodes = obs.NewGauge("atf_spacegen_last_unique_nodes",
		"Unique (shared) trie arena nodes in the most recently generated space")
	mSpacegenArenaBytes = obs.NewGauge("atf_spacegen_last_arena_bytes",
		"Bytes held by the trie arenas of the most recently generated space")
	mSpacegenMemoHits = obs.NewCounter("atf_spacegen_memo_hits_total",
		"Subtree-memoization hits during space generation")
	mSpacegenMemoMisses = obs.NewCounter("atf_spacegen_memo_misses_total",
		"Subtree-memoization misses (subtrees computed) during space generation")

	// Lazy (streaming) space construction (lazy.go).
	mSpaceLazyExpansions = obs.NewCounter("atf_space_lazy_expansions_total",
		"Sibling blocks expanded on first touch by lazy search spaces")
	mSpaceLazyEvictions = obs.NewCounter("atf_space_lazy_evictions_total",
		"Expanded slabs evicted by the lazy-space arena byte budget")
	mSpaceLazyResident = obs.NewGauge("atf_space_lazy_resident_bytes",
		"Resident expanded-slab bytes of the most recently touched lazy space")

	// Streaming space sweeps (iter.go).
	mIterChunks = obs.NewCounter("atf_space_iter_chunks_total",
		"Configuration chunks handed out by streaming space sweeps")
	mIterConfigs = obs.NewCounter("atf_space_iter_configs_total",
		"Configurations emitted by streaming space sweeps")
	mIterDescents = obs.NewCounter("atf_space_iter_descents_total",
		"Full root-to-leaf cursor descents performed by streaming sweeps (seeks and group resets)")
	mIterPrefetched = obs.NewCounter("atf_space_iter_prefetched_chunks_total",
		"Sweep chunks served from an overlapped prefetch instead of a synchronous walk")

	// Census persistence (census.go): restores of a persisted lazy-space
	// census vs. counting passes actually run.
	mCensusRuns = obs.NewCounter("atf_space_census_runs_total",
		"Lazy-space counting passes executed (cold census runs)")
	mCensusRestored = obs.NewCounter("atf_space_census_restored_total",
		"Lazy-space group censuses restored from a persisted snapshot")

	// Exploration (Explore and ExploreParallel).
	mEvaluations = obs.NewCounter("atf_evaluations_total",
		"Cost evaluations committed to exploration results")
	mEvalCached = obs.NewCounter("atf_evaluations_cached_total",
		"Committed evaluations served from the cost cache")
	mEvalFailed = obs.NewCounter("atf_evaluations_failed_total",
		"Committed evaluations whose cost function returned an error")
	mEvalSeconds = obs.NewHistogram("atf_evaluation_cost_seconds",
		"Wall-clock latency of one cost-function call (cache misses only)", nil)
	mBatches = obs.NewCounter("atf_explore_batches_total",
		"Configuration batches dispatched by ExploreParallel")
	mBatchMergeSeconds = obs.NewHistogram("atf_explore_batch_merge_seconds",
		"Latency of merging one evaluated batch in deterministic order", nil)
	mWorkersBusy = obs.NewGauge("atf_explore_workers_busy",
		"Exploration workers currently inside a cost-function call")
	mWorkers = obs.NewGauge("atf_explore_workers",
		"Workers of the most recently started parallel exploration")

	// The sharded cost cache behind ExploreParallel.
	mCostCacheHits = obs.NewCounter("atf_cost_cache_hits_total",
		"Cost-cache lookups served from a completed entry")
	mCostCacheMisses = obs.NewCounter("atf_cost_cache_misses_total",
		"Cost-cache lookups that evaluated the cost function")
	mCostCacheInflight = obs.NewCounter("atf_cost_cache_inflight_waits_total",
		"Cost-cache lookups that blocked on another worker's in-flight evaluation")
)
