package core

import "fmt"

// Constraint filters a tuning parameter's range: it receives a candidate
// value for the parameter plus the partial configuration of all previously
// declared parameters, and returns false to reject the value (paper,
// Section II, Step 1). Rejection happens during range iteration, before the
// Cartesian product is formed — the core of ATF's fast space generation.
type Constraint func(v Value, c *Config) bool

// Expr is an arithmetic expression over previously declared tuning
// parameters and constants, evaluated against a partial configuration.
// ATF constraint aliases such as atf::divides(N/WPT) take such expressions.
type Expr func(c *Config) int64

// ExprOf converts a constant or expression-like Go value into an Expr.
// Accepted: Expr, func(*Config) int64, and any integer type.
func ExprOf(x any) Expr {
	switch e := x.(type) {
	case Expr:
		return e
	case func(c *Config) int64:
		return e
	case int:
		v := int64(e)
		return func(*Config) int64 { return v }
	case int32:
		v := int64(e)
		return func(*Config) int64 { return v }
	case int64:
		return func(*Config) int64 { return e }
	case uint:
		v := int64(e)
		return func(*Config) int64 { return v }
	case uint64:
		v := int64(e)
		return func(*Config) int64 { return v }
	default:
		panic(fmt.Sprintf("core: cannot use %T as constraint expression", x))
	}
}

// Lit returns an Expr producing the constant v.
func Lit(v int64) Expr { return func(*Config) int64 { return v } }

// Ref returns an Expr producing the current value of the named (previously
// declared) integer parameter.
func Ref(name string) Expr { return func(c *Config) int64 { return c.Int(name) } }

// The six constraint aliases the paper lists (Section II): divides,
// is_multiple_of, less_than, greater_than, equal, unequal. Each takes a
// constant or an expression over earlier parameters.

// Divides accepts values v for which v divides expr(c) evenly. A value of
// zero never divides anything (avoids division by zero).
func Divides(x any) Constraint {
	e := ExprOf(x)
	return func(v Value, c *Config) bool {
		d := v.Int()
		if d == 0 {
			return false
		}
		return e(c)%d == 0
	}
}

// IsMultipleOf accepts values v that are an integer multiple of expr(c).
func IsMultipleOf(x any) Constraint {
	e := ExprOf(x)
	return func(v Value, c *Config) bool {
		m := e(c)
		if m == 0 {
			return false
		}
		return v.Int()%m == 0
	}
}

// LessThan accepts values strictly below expr(c).
func LessThan(x any) Constraint {
	e := ExprOf(x)
	return func(v Value, c *Config) bool { return v.Int() < e(c) }
}

// GreaterThan accepts values strictly above expr(c).
func GreaterThan(x any) Constraint {
	e := ExprOf(x)
	return func(v Value, c *Config) bool { return v.Int() > e(c) }
}

// LessEqual accepts values less than or equal to expr(c). Not one of the six
// paper aliases but trivially added, as the paper invites ("further aliases
// can be easily added").
func LessEqual(x any) Constraint {
	e := ExprOf(x)
	return func(v Value, c *Config) bool { return v.Int() <= e(c) }
}

// GreaterEqual accepts values greater than or equal to expr(c).
func GreaterEqual(x any) Constraint {
	e := ExprOf(x)
	return func(v Value, c *Config) bool { return v.Int() >= e(c) }
}

// Equal accepts values equal to expr(c).
func Equal(x any) Constraint {
	e := ExprOf(x)
	return func(v Value, c *Config) bool { return v.Int() == e(c) }
}

// Unequal accepts values different from expr(c).
func Unequal(x any) Constraint {
	e := ExprOf(x)
	return func(v Value, c *Config) bool { return v.Int() != e(c) }
}

// ConstraintAliases maps the paper's alias names (snake_case, matching
// atf::divides etc.) to their constructors. Declarative frontends — the
// atfd JSON API and spec files — resolve constraint operators through this
// table, so adding an alias here makes it available by name everywhere.
var ConstraintAliases = map[string]func(x any) Constraint{
	"divides":        Divides,
	"is_multiple_of": IsMultipleOf,
	"less_than":      LessThan,
	"greater_than":   GreaterThan,
	"less_equal":     LessEqual,
	"greater_equal":  GreaterEqual,
	"equal":          Equal,
	"unequal":        Unequal,
}

// ConstraintByName resolves a constraint alias from ConstraintAliases and
// applies it to the given constant or expression.
func ConstraintByName(op string, x any) (Constraint, error) {
	alias, ok := ConstraintAliases[op]
	if !ok {
		return nil, fmt.Errorf("core: unknown constraint alias %q", op)
	}
	return alias(x), nil
}

// And combines constraints conjunctively, mirroring ATF's && operator on
// constraints. A nil element is treated as always-true.
func And(cs ...Constraint) Constraint {
	return func(v Value, c *Config) bool {
		for _, ct := range cs {
			if ct != nil && !ct(v, c) {
				return false
			}
		}
		return true
	}
}

// Or combines constraints disjunctively, mirroring ATF's || operator.
// With no non-nil constraints Or accepts everything.
func Or(cs ...Constraint) Constraint {
	return func(v Value, c *Config) bool {
		any := false
		for _, ct := range cs {
			if ct == nil {
				continue
			}
			any = true
			if ct(v, c) {
				return true
			}
		}
		return !any
	}
}

// Not negates a constraint.
func Not(ct Constraint) Constraint {
	return func(v Value, c *Config) bool { return !ct(v, c) }
}

// Pred adapts a plain predicate over the candidate value (ignoring earlier
// parameters) into a Constraint.
func Pred(f func(v Value) bool) Constraint {
	return func(v Value, _ *Config) bool { return f(v) }
}

// IntPred adapts a predicate over int64 candidate values.
func IntPred(f func(v int64) bool) Constraint {
	return func(v Value, _ *Config) bool { return f(v.Int()) }
}
