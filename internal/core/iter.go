package core

import "fmt"

// Streaming slab iteration (ROADMAP item 2 follow-up): exhaustive sweeps
// used to fetch configurations one At(i) at a time — every call re-descends
// each group trie from the root (binary searches over prefix sums on the
// eager arena, slab-cache lookups on the lazy representation) and allocates
// a fresh Config with its own name index. A Sweep instead keeps one cursor
// per group holding the full root-to-leaf path — sibling-block bounds and
// the position within each block — so stepping to the next configuration is
// an increment at the deepest non-exhausted level plus a leftmost re-descent
// below it. Dead prefixes are pruned by generation in both representations
// (every stored node has at least one leaf beneath it), which is what makes
// the leftmost descent unconditionally valid. On lazy trees the cursor
// additionally pins the slabs along its path: an expanded block stays
// reachable through the cursor even after the byte-budgeted LRU evicts it,
// so a sweep never re-expands the block it is currently walking no matter
// how small the budget is.
//
// The enumeration order is exactly At(0), At(1), ... — the cursors advance
// in the same mixed-radix order Space.At decodes (first group slowest) and
// emit clones of one scratch configuration, so an exhaustive exploration
// over a Sweep is bit-identical to the index-loop path at any worker count.
//
// NextChunk optionally overlaps production of the next chunk with the
// caller's evaluation of the current one (SweepOptions.Prefetch): at most
// one producer goroutine is in flight, hand-off happens through a buffered
// channel (which also publishes the cursor state back to the consumer), and
// Close drains the in-flight chunk so no goroutine leaks.

// SweepOptions configures a streaming sweep.
type SweepOptions struct {
	// Prefetch overlaps production of the next chunk with the caller's
	// processing of the current one. Safe for any single-consumer use;
	// exploration enables it so slab expansion of batch k+1 hides behind
	// the cost evaluations of batch k.
	Prefetch bool
}

// Sweep is a resumable streaming cursor over a Space's configurations in
// index order. It is single-consumer: NextChunk and Close must not be
// called concurrently. Close must be called when the sweep is abandoned
// before exhaustion and Prefetch is on.
type Sweep struct {
	sp      *Space
	next    uint64 // index of the next configuration to emit
	size    uint64
	curs    []groupCursor
	scratch *Config
	primed  bool

	prefetch bool
	pre      chan sweepChunk
	inflight bool
	closed   bool
	buf      []*Config // prefetched configurations not yet handed out
}

// sweepChunk is one prefetched chunk hand-off; panicked carries a producer
// panic to be re-raised on the consumer.
type sweepChunk struct {
	cfgs     []*Config
	panicked any
}

// groupCursor holds the current root-to-leaf path through one group trie.
// Exactly one of the eager (pos/lo/hi) or lazy (slabs/spos) path states is
// used, matching the tree's representation.
type groupCursor struct {
	t      *Tree
	offset int // first parameter position of this group in the space
	// Eager arena path: at depth d the cursor sits on node pos[d] of the
	// sibling block [lo[d], hi[d]) of t.lv[d].
	pos, lo, hi []uint32
	// Lazy path: at depth d the cursor sits on entry spos[d] of slabs[d].
	// Holding the *slab pins it against LRU eviction for the cursor's
	// lifetime on this path.
	slabs  []*slab
	spos   []int
	keybuf []byte
}

// Sweep returns a streaming cursor positioned at configuration index start
// (the first NextChunk emits At(start), At(start+1), ...). start == Size()
// yields an immediately exhausted sweep; larger values panic.
func (s *Space) Sweep(start uint64, opts SweepOptions) *Sweep {
	if start > s.size {
		panic(fmt.Sprintf("core: sweep start %d out of range (size %d)", start, s.size))
	}
	sw := &Sweep{
		sp:       s,
		next:     start,
		size:     s.size,
		scratch:  NewConfig(s.names),
		prefetch: opts.Prefetch,
	}
	if opts.Prefetch {
		sw.pre = make(chan sweepChunk, 1)
	}
	offset := 0
	for _, t := range s.trees {
		c := groupCursor{t: t, offset: offset}
		depth := len(t.params)
		if t.lazy != nil {
			c.slabs = make([]*slab, depth)
			c.spos = make([]int, depth)
		} else {
			c.pos = make([]uint32, depth)
			c.lo = make([]uint32, depth)
			c.hi = make([]uint32, depth)
		}
		sw.curs = append(sw.curs, c)
		offset += depth
	}
	return sw
}

// Position returns the index of the next configuration the sweep will emit.
func (sw *Sweep) Position() uint64 {
	if sw.inflight {
		// The producer goroutine owns the cursor; the last published state
		// is the buffered chunk boundary, which the consumer cannot know
		// without draining. Positions are only meaningful between chunks.
		panic("core: Sweep.Position called with a prefetch in flight")
	}
	return sw.next - uint64(len(sw.buf))
}

// NextChunk returns the next n configurations in index order, fewer when
// the space is exhausted mid-chunk, and nil once (or if) it is exhausted.
// The returned configurations are independent clones, safe to retain and to
// evaluate concurrently.
func (sw *Sweep) NextChunk(n int) []*Config {
	if n <= 0 || sw.closed {
		return nil
	}
	out := make([]*Config, 0, n)
	if len(sw.buf) > 0 {
		k := n
		if k > len(sw.buf) {
			k = len(sw.buf)
		}
		out = append(out, sw.buf[:k]...)
		sw.buf = sw.buf[k:]
	}
	if len(out) < n && sw.inflight {
		ck := <-sw.pre
		sw.inflight = false
		if ck.panicked != nil {
			panic(ck.panicked)
		}
		mIterPrefetched.Inc()
		sw.buf = ck.cfgs
		k := n - len(out)
		if k > len(sw.buf) {
			k = len(sw.buf)
		}
		out = append(out, sw.buf[:k]...)
		sw.buf = sw.buf[k:]
	}
	if len(out) < n {
		out = sw.produce(out, n)
	}
	if sw.prefetch && !sw.inflight && len(sw.buf) == 0 && sw.next < sw.size {
		sw.inflight = true
		go func() {
			var ck sweepChunk
			func() {
				defer func() {
					if r := recover(); r != nil {
						ck.panicked = r
					}
				}()
				ck.cfgs = sw.produce(make([]*Config, 0, n), n)
			}()
			sw.pre <- ck
		}()
	}
	if len(out) == 0 {
		return nil
	}
	mIterChunks.Inc()
	mIterConfigs.Add(uint64(len(out)))
	return out
}

// Close releases the sweep, draining any in-flight prefetch. Idempotent.
// A producer panic held by the drained chunk is swallowed — the caller is
// abandoning the sweep and the panic already failed to reach anyone.
func (sw *Sweep) Close() {
	if sw.closed {
		return
	}
	sw.closed = true
	sw.buf = nil
	if sw.inflight {
		<-sw.pre
		sw.inflight = false
	}
}

// produce appends up to n-len(out) configurations to out by walking the
// cursors. Runs on the consumer or on the single prefetch goroutine, never
// both at once (NextChunk drains the in-flight chunk before producing).
func (sw *Sweep) produce(out []*Config, n int) []*Config {
	for len(out) < n && sw.next < sw.size {
		if !sw.primed {
			sw.prime()
			sw.primed = true
		} else {
			sw.advance()
		}
		out = append(out, sw.scratch.Clone())
		sw.next++
	}
	return out
}

// prime seeks every group cursor to the decomposition of sw.next, writing
// the configuration into the scratch. The mixed-radix decomposition matches
// Space.At: the first group varies slowest.
func (sw *Sweep) prime() {
	subs := make([]uint64, len(sw.curs))
	idx := sw.next
	for i := len(sw.curs) - 1; i >= 0; i-- {
		t := sw.curs[i].t
		subs[i] = idx % t.total
		idx /= t.total
	}
	// Seeks run in declaration order because Config.set truncates the
	// filled watermark: each group writes strictly increasing positions.
	for i := range sw.curs {
		sw.curs[i].seek(subs[i], sw.scratch)
	}
}

// advance steps the cursors to the next configuration: the last group moves
// fastest; a group that exhausts wraps to its first configuration and the
// previous group advances. sw.next < sw.size guarantees some group can move.
func (sw *Sweep) advance() {
	for i := len(sw.curs) - 1; i >= 0; i-- {
		if sw.curs[i].advance(sw.scratch) {
			for j := i + 1; j < len(sw.curs); j++ {
				sw.curs[j].seek(0, sw.scratch)
			}
			return
		}
	}
	panic("core: sweep advanced past the end of the space")
}

// seek positions the cursor on in-group index sub, writing the group's
// values into cfg. One full root-to-leaf descent.
func (c *groupCursor) seek(sub uint64, cfg *Config) {
	mIterDescents.Inc()
	if c.t.lazy != nil {
		c.seekLazy(sub, cfg)
		return
	}
	t := c.t
	if sub >= t.total {
		panic("core: sweep cursor index out of range")
	}
	lo, hi := uint32(0), t.rootN
	last := len(t.lv) - 1
	for d := 0; d < last; d++ {
		lv := &t.lv[d]
		c.lo[d], c.hi[d] = lo, hi
		a, b := lo, hi
		for b-a > 1 {
			mid := a + (b-a)/2
			if lv.cum[mid] <= sub {
				a = mid
			} else {
				b = mid
			}
		}
		c.pos[d] = a
		cfg.set(c.offset+d, lv.vals[a])
		sub -= lv.cum[a]
		lo, hi = lv.childLo[a], lv.childHi[a]
	}
	c.lo[last], c.hi[last] = lo, hi
	c.pos[last] = lo + uint32(sub)
	cfg.set(c.offset+last, t.lv[last].vals[c.pos[last]])
}

// seekLazy is seek over the lazy representation, expanding (or fetching
// from the slab cache) exactly the blocks on the path and pinning them.
func (c *groupCursor) seekLazy(sub uint64, cfg *Config) {
	lt := c.t.lazy
	if sub >= lt.total {
		panic("core: sweep cursor index out of range")
	}
	last := len(lt.params) - 1
	for d := 0; d <= last; d++ {
		var s *slab
		s, c.keybuf = lt.slabFor(d, cfg, c.offset, c.keybuf)
		c.slabs[d] = s
		if d == last {
			c.spos[d] = int(sub)
			cfg.set(c.offset+d, s.vals[sub])
			return
		}
		a, b := 0, len(s.vals)
		for b-a > 1 {
			mid := a + (b-a)/2
			if s.cum[mid] <= sub {
				a = mid
			} else {
				b = mid
			}
		}
		c.spos[d] = a
		cfg.set(c.offset+d, s.vals[a])
		sub -= s.cum[a]
	}
}

// advance steps the cursor to the group's next configuration, or reports
// exhaustion. The deepest level whose sibling block still has entries to
// the right advances by one; everything below re-descends leftmost, which
// is always valid because generation prunes dead prefixes.
func (c *groupCursor) advance(cfg *Config) bool {
	if c.t.lazy != nil {
		return c.advanceLazy(cfg)
	}
	t := c.t
	last := len(t.lv) - 1
	d := last
	for d >= 0 && c.pos[d]+1 >= c.hi[d] {
		d--
	}
	if d < 0 {
		return false
	}
	c.pos[d]++
	cfg.set(c.offset+d, t.lv[d].vals[c.pos[d]])
	for ; d < last; d++ {
		lo, hi := t.lv[d].childLo[c.pos[d]], t.lv[d].childHi[c.pos[d]]
		c.lo[d+1], c.hi[d+1] = lo, hi
		c.pos[d+1] = lo
		cfg.set(c.offset+d+1, t.lv[d+1].vals[lo])
	}
	return true
}

// advanceLazy is advance over the lazy representation. Stepping within the
// pinned slabs is allocation- and lock-free; only the re-descent below the
// advanced level touches the slab cache (and each such block is usually
// already resident).
func (c *groupCursor) advanceLazy(cfg *Config) bool {
	lt := c.t.lazy
	last := len(lt.params) - 1
	d := last
	for d >= 0 && c.spos[d]+1 >= len(c.slabs[d].vals) {
		d--
	}
	if d < 0 {
		return false
	}
	c.spos[d]++
	cfg.set(c.offset+d, c.slabs[d].vals[c.spos[d]])
	for dd := d + 1; dd <= last; dd++ {
		var s *slab
		s, c.keybuf = lt.slabFor(dd, cfg, c.offset, c.keybuf)
		c.slabs[dd] = s
		c.spos[dd] = 0
		cfg.set(c.offset+dd, s.vals[0])
	}
	return true
}
