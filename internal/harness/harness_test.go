package harness

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

// tinyOpts keeps the experiment tests fast; the assertions are about the
// paper-relevant *shape* of the results, which holds at small budgets too.
func tinyOpts() Options {
	return Options{
		Seed:           1,
		RangeCap:       16,
		ATFEvals:       50,
		OpenTunerEvals: 1500,
		DevOptEvals:    25,
	}
}

func TestFig2ShapeGPU(t *testing.T) {
	r, err := Fig2("K20m", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("expected 4 input sizes, got %d", len(r.Rows))
	}
	if r.DeviceOptimized == nil {
		t.Fatal("device-optimized fallback missing")
	}
	for _, row := range r.Rows {
		if row.ATFNs <= 0 || row.CLTuneNs <= 0 || row.OpenTunerNs <= 0 {
			t.Fatalf("%s: non-positive runtimes %+v", row.IS, row)
		}
		// At this deliberately tiny budget (range cap 16, 50 evaluations)
		// the CLTune fallback's WGD=32 configurations lie *outside* ATF's
		// capped space, so ATF can trail slightly; it must still be in
		// the same league. The full-budget headline shape (ATF >= both
		// baselines everywhere) is asserted by TestFig2FullShape and
		// recorded in EXPERIMENTS.md.
		if row.SpeedupVsCLTune < 0.7 {
			t.Errorf("%s: ATF far slower than CLTune fallback (%.2fx)", row.IS, row.SpeedupVsCLTune)
		}
		if row.SpeedupVsOpenTuner < 0.9 {
			t.Errorf("%s: ATF slower than OpenTuner fallback (%.2fx)", row.IS, row.SpeedupVsOpenTuner)
		}
	}
	// Table renders in both formats.
	tbl := Fig2Table(r, "E2")
	var buf bytes.Buffer
	tbl.Render(&buf)
	if !strings.Contains(buf.String(), "IS4") {
		t.Error("table missing rows")
	}
	buf.Reset()
	tbl.Markdown(&buf)
	if !strings.Contains(buf.String(), "| IS1 |") {
		t.Error("markdown table malformed")
	}
}

// TestFig2FullShape asserts the paper's headline result at full budgets
// (range cap 64, 400 evaluations). It takes ~10 minutes per device on one
// core, so it only runs when ATF_FULL_EXPERIMENTS=1 is set; the recorded
// run lives in EXPERIMENTS.md.
func TestFig2FullShape(t *testing.T) {
	if os.Getenv("ATF_FULL_EXPERIMENTS") == "" {
		t.Skip("set ATF_FULL_EXPERIMENTS=1 to run the full-budget Figure 2 shape test")
	}
	for _, dev := range []string{"K20m", "Xeon"} {
		r, err := Fig2(dev, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.SpeedupVsCLTune < 1 {
				t.Errorf("%s/%s: ATF slower than CLTune (%.2fx)", dev, row.IS, row.SpeedupVsCLTune)
			}
			if row.SpeedupVsOpenTuner < 1 {
				t.Errorf("%s/%s: ATF slower than OpenTuner (%.2fx)", dev, row.IS, row.SpeedupVsOpenTuner)
			}
		}
	}
}

func TestSpaceGenShape(t *testing.T) {
	r, err := SpaceGen(16, 100000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.CLTuneAborted {
		t.Fatal("budget 1e5 must abort on the 16-cap product (>10^9)")
	}
	// ATF finishes; its visit count is orders of magnitude below the raw
	// product.
	if r.ATFSize == 0 {
		t.Fatal("ATF found no configs")
	}
	if r.ATFChecks >= 1<<30 {
		t.Fatalf("ATF checks suspiciously high: %d", r.ATFChecks)
	}
	if r.CLTuneProjected < r.ATFTime {
		t.Fatalf("projected CLTune time (%v) must exceed ATF's (%v)",
			r.CLTuneProjected, r.ATFTime)
	}
	var buf bytes.Buffer
	SpaceGenTable(r).Render(&buf)
	if !strings.Contains(buf.String(), "ABORTED") {
		t.Error("table should mark the abort")
	}
}

func TestSizesShape(t *testing.T) {
	r, err := Sizes(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Constrained == 0 {
		t.Fatal("no valid configs")
	}
	// Raw/constrained ratio is the paper's point.
	if float64(r.Constrained) > 1.074e9/100 {
		t.Fatalf("constrained (%d) should be a tiny fraction of raw 1.07e9", r.Constrained)
	}
	var buf bytes.Buffer
	SizesTable([]*SizesResult{r}).Render(&buf)
	if !strings.Contains(buf.String(), "16") {
		t.Error("table malformed")
	}
}

func TestRelaxedShape(t *testing.T) {
	rs, err := Relaxed("K20m", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("4 input sizes expected, got %d", len(rs))
	}
	for _, r := range rs {
		// Dropping constraints can only enlarge the space.
		if r.RelaxedSize < r.ConstrainedSize {
			t.Fatalf("%s: relaxed space (%d) smaller than constrained (%d)",
				r.IS, r.RelaxedSize, r.ConstrainedSize)
		}
		if r.RelaxedNs <= 0 {
			t.Fatalf("%s: no relaxed result", r.IS)
		}
	}
	var buf bytes.Buffer
	RelaxedTable(rs).Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty table")
	}
}

func TestValidityShape(t *testing.T) {
	opts := tinyOpts()
	rs, err := Validity(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Evaluations != opts.OpenTunerEvals {
			t.Fatalf("%s: evaluations %d", r.IS, r.Evaluations)
		}
		// With valid fraction ~8e-5 at cap 16 and 1500 evals, a handful
		// of hits is possible but the overwhelming majority must be
		// penalized — the §VI-B effect.
		if r.ValidHits > r.Evaluations/10 {
			t.Fatalf("%s: too many valid hits (%d of %d) — penalty path broken?",
				r.IS, r.ValidHits, r.Evaluations)
		}
	}
	var buf bytes.Buffer
	ValidityTable(rs).Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty table")
	}
}

func TestDefaultsShape(t *testing.T) {
	rs, err := Defaults("Xeon", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, r := range rs {
		if r.DefaultNs <= 0 || r.DevOptNs <= 0 {
			t.Fatalf("%s: non-positive times", r.IS)
		}
		if r.DefaultWins {
			wins++
		}
	}
	// §VI-B: "in most cases" the defaults win on the deep-learning sizes.
	if wins < 2 {
		t.Errorf("defaults won only %d of 4 — paper expects most", wins)
	}
	var buf bytes.Buffer
	DefaultsTable(rs).Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty table")
	}
}

func TestGroupsShape(t *testing.T) {
	r, err := Groups(3, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.SpaceSize == 0 {
		t.Fatal("empty grouped space")
	}
	if r.Sequential <= 0 || r.Parallel <= 0 {
		t.Fatal("timings missing")
	}
	var buf bytes.Buffer
	GroupsTable(r).Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty table")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:      "X",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333333", "4"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== X: demo ==") || !strings.Contains(out, "note: a note") {
		t.Fatalf("render malformed:\n%s", out)
	}
	buf.Reset()
	tbl.Markdown(&buf)
	if !strings.Contains(buf.String(), "| a | long-column |") {
		t.Fatalf("markdown malformed:\n%s", buf.String())
	}
}

func TestFig2UnknownDevice(t *testing.T) {
	if _, err := Fig2("NoSuchDevice", tinyOpts()); err == nil {
		t.Fatal("unknown device must error")
	}
}

func TestSpeedupNumbersConsistent(t *testing.T) {
	r, err := Fig2("K20m", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if diff := row.SpeedupVsCLTune - row.CLTuneNs/row.ATFNs; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: speedup inconsistent", row.IS)
		}
	}
	_ = time.Now() // keep time import for future timing assertions
}
