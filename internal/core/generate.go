package core

import (
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"atf/internal/obs"
)

// GenOptions controls search-space generation.
type GenOptions struct {
	// Workers is the number of goroutines used for parallel generation.
	// 0 means runtime.NumCPU(). 1 forces sequential generation (the
	// baseline of ablation experiment E9).
	Workers int
}

// GenerateGroup builds the sub-space trie for one parameter group by
// iterating the parameters' raw ranges in declaration order and applying
// each parameter's constraint against the partial configuration (paper,
// Section II Step 1). Invalid values are pruned immediately, so the
// Cartesian product of raw ranges — which for XgemmDirect exceeds 10^19 —
// is never formed.
func GenerateGroup(g *Group, opts GenOptions) (*Tree, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	t := &Tree{params: g.Params, names: g.Names()}
	var checks atomic.Uint64

	rootRange := g.Params[0].Range
	n := rootRange.Len()
	if workers > n {
		workers = n
	}

	// Each worker owns a contiguous chunk of the first parameter's raw
	// range and builds the subtrees for its chunk independently; chunk
	// results are concatenated in range order so the trie (and therefore
	// configuration indices) is identical regardless of worker count.
	type chunkResult struct {
		roots []*node
		err   error
	}
	results := make([]chunkResult, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					results[w].err = fmt.Errorf("core: generating group %v: %v", t.names, r)
				}
			}()
			cfg := NewConfig(t.names)
			var local uint64
			roots := buildLevel(g.Params, 0, lo, hi, cfg, &local)
			checks.Add(local)
			results[w].roots = roots
		}(w, lo, hi)
	}
	wg.Wait()

	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		t.roots = append(t.roots, r.roots...)
	}
	t.total = sumCounts(t.roots)
	t.checks = checks.Load()
	return t, nil
}

// buildLevel constructs trie nodes for parameter depth d, restricted to raw
// range indices [lo, hi) (the full range for all depths except a
// parallelized root). cfg carries the partial configuration; checks counts
// constraint evaluations.
func buildLevel(params []*Param, d, lo, hi int, cfg *Config, checks *uint64) []*node {
	p := params[d]
	last := d == len(params)-1

	emit := func(out []*node, v Value) []*node {
		*checks++
		if !p.Accepts(v, cfg) {
			return out
		}
		if last {
			return append(out, &node{val: v, count: 1})
		}
		cfg.set(d, v)
		children := buildLevel(params, d+1, 0, params[d+1].Range.Len(), cfg, checks)
		if len(children) == 0 {
			return out // dead prefix: no valid completion exists
		}
		return append(out, &node{val: v, children: children, count: sumCounts(children)})
	}

	var out []*node
	// Divisor-hinted fast path: enumerate only candidate divisors. On a
	// parallelized root level each worker intersects the divisor set with
	// its own chunk, so multi-worker generation keeps the fast path.
	if vals, ok := hintedValues(p, cfg, lo, hi); ok {
		for _, v := range vals {
			out = emit(out, Int(v))
		}
		return out
	}
	for i := lo; i < hi; i++ {
		out = emit(out, p.Range.At(i))
	}
	return out
}

// GenerateSpace generates the full search space from parameter groups. The
// groups are generated concurrently ("one thread per dependent parameter
// group", Section V) and, within a group, the first parameter's range is
// split across workers. The resulting Space is the cross product of the
// group sub-spaces; the product is represented implicitly and never
// materialized.
func GenerateSpace(groups []*Group, opts GenOptions) (*Space, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: no tuning parameters")
	}
	span := obs.StartSpan("spacegen", slog.Int("groups", len(groups)))
	start := time.Now()
	// Validate global name uniqueness up front for a good error message.
	seen := make(map[string]bool)
	var names []string
	var params []*Param
	for _, g := range groups {
		for _, p := range g.Params {
			if seen[p.Name] {
				return nil, fmt.Errorf("core: duplicate tuning parameter %q", p.Name)
			}
			seen[p.Name] = true
			names = append(names, p.Name)
			params = append(params, p)
		}
	}

	trees := make([]*Tree, len(groups))
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for i, g := range groups {
		wg.Add(1)
		go func(i int, g *Group) {
			defer wg.Done()
			trees[i], errs[i] = GenerateGroup(g, opts)
		}(i, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			span.Fail(err)
			return nil, err
		}
	}

	s := &Space{trees: trees, names: names, params: params}
	size := uint64(1)
	for _, t := range trees {
		if t.total == 0 {
			size = 0
			break
		}
		if size > 0 && t.total > ^uint64(0)/size {
			err := fmt.Errorf("core: search space size overflows uint64")
			span.Fail(err)
			return nil, err
		}
		size *= t.total
	}
	s.size = size

	var nodes uint64
	for _, t := range trees {
		nodes += t.Nodes()
	}
	mSpacegenRuns.Inc()
	mSpacegenSeconds.Observe(time.Since(start).Seconds())
	mSpacegenChecks.Add(s.Checks())
	mSpacegenConfigs.Set(int64(size))
	mSpacegenNodes.Set(int64(nodes))
	span.End(
		slog.Uint64("valid_configs", size),
		slog.Uint64("tree_nodes", nodes),
		slog.Uint64("constraint_checks", s.Checks()))
	return s, nil
}

// GenerateFlat is a convenience wrapper generating a space from an ungrouped
// parameter list as a single group — always correct, sequentially chained.
func GenerateFlat(params []*Param, opts GenOptions) (*Space, error) {
	return GenerateSpace([]*Group{G(params...)}, opts)
}
