// Generic cost function: auto-tune a program in an arbitrary language via
// user-provided compile and run scripts and a cost log file (paper,
// Section II Step 2). Here the "program" is a shell script computing a
// synthetic cost, standing in for any external toolchain.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"atf"
)

func main() {
	dir, err := os.MkdirTemp("", "atf-generic")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	logFile := filepath.Join(dir, "cost.log")

	// The compile script receives the tuning parameters both as
	// ATF_TP_<NAME> variables and as -D flags in ATF_DEFINES — exactly
	// what a real build script would forward to its compiler.
	compile := filepath.Join(dir, "compile.sh")
	if err := os.WriteFile(compile, []byte(`#!/bin/sh
# A real script would run: $CC $ATF_DEFINES -o prog "$ATF_SOURCE"
[ -n "$ATF_DEFINES" ] || exit 1
exit 0
`), 0o755); err != nil {
		log.Fatal(err)
	}

	// The run script writes "runtime,memory" to the log file: two
	// objectives, comma-separated, minimized lexicographically. The
	// synthetic optimum is BLOCK=24, UNROLL as large as possible.
	run := filepath.Join(dir, "run.sh")
	if err := os.WriteFile(run, []byte(`#!/bin/sh
b=$ATF_TP_BLOCK
u=$ATF_TP_UNROLL
d=$((b - 24)); [ $d -lt 0 ] && d=$((-d))
runtime=$((d * 10 + 100 / u))
memory=$((b * u))
echo "$runtime,$memory" > "$ATF_LOG"
`), 0o755); err != nil {
		log.Fatal(err)
	}

	cf := (&atf.Generic{
		SourcePath:    filepath.Join(dir, "prog.c"),
		CompileScript: compile,
		RunScript:     run,
		LogFile:       logFile,
	}).CostFunction()

	// BLOCK ∈ [8, 64] stepping by 8; UNROLL must divide BLOCK.
	block := atf.TP("BLOCK", atf.SteppedInterval(8, 64, 8))
	unroll := atf.TP("UNROLL", atf.Interval(1, 16), atf.Divides(atf.Ref("BLOCK")))

	res, err := atf.Tuner{}.Tune(cf, block, unroll) // exhaustive: small space
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("space:  %d valid configurations\n", res.SpaceSize)
	fmt.Printf("best:   BLOCK=%d UNROLL=%d\n",
		res.Best.Int("BLOCK"), res.Best.Int("UNROLL"))
	fmt.Printf("cost:   runtime=%v, memory=%v (lexicographic)\n",
		res.BestCost[0], res.BestCost[1])
}
