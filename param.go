package atf

import "atf/internal/core"

// TP declares a tuning parameter — the paper's
// tp(name, range, constraint) form. The optional constraints are combined
// conjunctively; each may reference previously declared parameters of the
// same group through the partial configuration.
func TP(name string, r Range, constraints ...Constraint) *Param {
	return core.NewParam(name, r, constraints...)
}

// G groups interdependent tuning parameters (paper, Section V). Groups
// generate their sub-spaces in parallel; a constraint may only reference
// parameters declared earlier in the same group.
func G(params ...*Param) *Group { return core.G(params...) }

// Interval is the integer interval [begin, end] with step 1 —
// atf::interval<T>(begin, end).
func Interval(begin, end int64) Range { return core.NewInterval(begin, end) }

// SteppedInterval is [begin, end] with the given step size.
func SteppedInterval(begin, end, step int64) Range {
	return core.NewSteppedInterval(begin, end, step)
}

// GeneratedInterval applies a generator to each index of [begin, end],
// e.g. the first ten powers of two:
//
//	atf.GeneratedInterval(1, 10, 1, func(i int64) atf.Value { return atf.Int(1 << uint(i)) })
//
// The range's value kind follows the generator's output (the paper's
// "range type changes automatically to T'").
func GeneratedInterval(begin, end, step int64, gen func(i int64) Value) Range {
	return core.NewGeneratedInterval(begin, end, step, gen)
}

// FloatInterval is a floating-point interval [begin, end] with step.
func FloatInterval(begin, end, step float64) Range {
	return core.NewFloatInterval(begin, end, step)
}

// Set lists a range's elements explicitly — atf::set(v1, ..., vn). Values
// may be integers, floats, bools, or strings (enum-style parameters).
func Set(values ...any) Range { return core.NewSet(values...) }

// Bools is the {false, true} range of a boolean tuning parameter.
func Bools() Range { return core.BoolRange() }

// Int wraps an integer as a Value.
func Int(v int64) Value { return core.Int(v) }

// Float wraps a float as a Value.
func Float(v float64) Value { return core.Float(v) }

// Bool wraps a bool as a Value.
func Bool(v bool) Value { return core.Bool(v) }

// Str wraps a string (enum constant) as a Value.
func Str(v string) Value { return core.Str(v) }

// The six constraint aliases of the paper's Section II, plus combinators.
// Each accepts a constant (int/int64/...) or an expression over earlier
// parameters (func(*Config) int64).

// Divides accepts parameter values that divide the expression evenly.
func Divides(x any) Constraint { return core.Divides(x) }

// IsMultipleOf accepts values that are a multiple of the expression.
func IsMultipleOf(x any) Constraint { return core.IsMultipleOf(x) }

// LessThan accepts values strictly below the expression.
func LessThan(x any) Constraint { return core.LessThan(x) }

// GreaterThan accepts values strictly above the expression.
func GreaterThan(x any) Constraint { return core.GreaterThan(x) }

// Equal accepts values equal to the expression.
func Equal(x any) Constraint { return core.Equal(x) }

// Unequal accepts values different from the expression.
func Unequal(x any) Constraint { return core.Unequal(x) }

// And combines constraints conjunctively (the paper's && on constraints).
func And(cs ...Constraint) Constraint { return core.And(cs...) }

// Or combines constraints disjunctively (the paper's ||).
func Or(cs ...Constraint) Constraint { return core.Or(cs...) }

// Not negates a constraint.
func Not(c Constraint) Constraint { return core.Not(c) }

// Where adapts an arbitrary predicate over the candidate value into a
// constraint, for conditions the aliases do not cover.
func Where(f func(v Value) bool) Constraint { return core.Pred(f) }

// Expr is an arithmetic expression over previously declared parameters,
// accepted by the constraint aliases. It carries the read footprint that
// drives dependency-aware subtree memoization during space generation.
type Expr = core.Expr

// Ref is the value of a previously declared integer parameter, for use in
// constraint expressions.
func Ref(name string) Expr { return core.Ref(name) }
