package core

import "testing"

// ctx builds a partial configuration with the given assignments, in order.
func ctx(names []string, vals ...Value) *Config {
	c := NewConfig(names)
	for i, v := range vals {
		c.set(i, v)
	}
	return c
}

func TestDivides(t *testing.T) {
	// The paper's saxpy example: WPT must divide N.
	const N = 12
	ct := Divides(N)
	empty := ctx(nil)
	for _, v := range []int64{1, 2, 3, 4, 6, 12} {
		if !ct(Int(v), empty) {
			t.Errorf("%d should divide %d", v, N)
		}
	}
	for _, v := range []int64{5, 7, 8, 9, 10, 11, 13} {
		if ct(Int(v), empty) {
			t.Errorf("%d should not divide %d", v, N)
		}
	}
	if ct(Int(0), empty) {
		t.Error("zero never divides")
	}
}

func TestDividesExpr(t *testing.T) {
	// LS must divide N/WPT (Listing 2, line 12).
	const N = 24
	names := []string{"WPT", "LS"}
	ct := Divides(func(c *Config) int64 { return N / c.Int("WPT") })
	c := ctx(names, Int(4)) // N/WPT = 6
	for _, v := range []int64{1, 2, 3, 6} {
		if !ct(Int(v), c) {
			t.Errorf("LS=%d should divide 6", v)
		}
	}
	if ct(Int(4), c) || ct(Int(5), c) {
		t.Error("4 and 5 do not divide 6")
	}
}

func TestIsMultipleOf(t *testing.T) {
	ct := IsMultipleOf(4)
	empty := ctx(nil)
	if !ct(Int(8), empty) || !ct(Int(4), empty) || !ct(Int(0), empty) {
		t.Error("multiples of 4 rejected")
	}
	if ct(Int(6), empty) {
		t.Error("6 is not a multiple of 4")
	}
	zero := IsMultipleOf(0)
	if zero(Int(5), empty) {
		t.Error("nothing is a multiple of 0")
	}
}

func TestComparisonAliases(t *testing.T) {
	empty := ctx(nil)
	if !LessThan(5)(Int(4), empty) || LessThan(5)(Int(5), empty) {
		t.Error("LessThan broken")
	}
	if !GreaterThan(5)(Int(6), empty) || GreaterThan(5)(Int(5), empty) {
		t.Error("GreaterThan broken")
	}
	if !LessEqual(5)(Int(5), empty) || LessEqual(5)(Int(6), empty) {
		t.Error("LessEqual broken")
	}
	if !GreaterEqual(5)(Int(5), empty) || GreaterEqual(5)(Int(4), empty) {
		t.Error("GreaterEqual broken")
	}
	if !Equal(5)(Int(5), empty) || Equal(5)(Int(4), empty) {
		t.Error("Equal broken")
	}
	if !Unequal(5)(Int(4), empty) || Unequal(5)(Int(5), empty) {
		t.Error("Unequal broken")
	}
}

func TestExprOf(t *testing.T) {
	empty := ctx(nil)
	if ExprOf(7)(empty) != 7 {
		t.Error("int literal expr")
	}
	if ExprOf(int32(7))(empty) != 7 || ExprOf(int64(7))(empty) != 7 {
		t.Error("sized literal expr")
	}
	if ExprOf(uint(7))(empty) != 7 || ExprOf(uint64(7))(empty) != 7 {
		t.Error("unsigned literal expr")
	}
	if ExprOf(Lit(9))(empty) != 9 {
		t.Error("Expr passthrough")
	}
	f := func(c *Config) int64 { return 3 }
	if ExprOf(f)(empty) != 3 {
		t.Error("func expr")
	}
}

func TestExprOfUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExprOf("nope")
}

func TestRefAndLit(t *testing.T) {
	c := ctx([]string{"WGD"}, Int(32))
	if Ref("WGD")(c) != 32 {
		t.Error("Ref broken")
	}
	if Lit(5)(c) != 5 {
		t.Error("Lit broken")
	}
}

func TestAndOrNot(t *testing.T) {
	empty := ctx(nil)
	even := IntPred(func(v int64) bool { return v%2 == 0 })
	big := IntPred(func(v int64) bool { return v > 10 })

	and := And(even, big)
	if !and(Int(12), empty) || and(Int(12+1), empty) || and(Int(2), empty) {
		t.Error("And broken")
	}
	// nil elements are always-true.
	if !And(nil, even)(Int(2), empty) {
		t.Error("And with nil broken")
	}

	or := Or(even, big)
	if !or(Int(2), empty) || !or(Int(11), empty) || or(Int(7), empty) {
		t.Error("Or broken")
	}
	if !Or()(Int(7), empty) {
		t.Error("empty Or should accept")
	}
	if !Or(nil)(Int(7), empty) {
		t.Error("Or of nils should accept")
	}

	if Not(even)(Int(2), empty) || !Not(even)(Int(3), empty) {
		t.Error("Not broken")
	}
}

func TestPredAdapters(t *testing.T) {
	empty := ctx(nil)
	p := Pred(func(v Value) bool { return v.Kind() == KindInt })
	if !p(Int(1), empty) || p(Str("x"), empty) {
		t.Error("Pred broken")
	}
	ip := IntPred(func(v int64) bool { return v == 3 })
	if !ip(Int(3), empty) || ip(Int(4), empty) {
		t.Error("IntPred broken")
	}
}

func TestDividesOnBooleanParam(t *testing.T) {
	// Boolean parameters promote to 0/1 in integral constraints, as in C++.
	empty := ctx(nil)
	ct := Divides(6)
	if !ct(Bool(true), empty) {
		t.Error("true (1) divides 6")
	}
	if ct(Bool(false), empty) {
		t.Error("false (0) never divides")
	}
}
