package client_test

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"atf"
	"atf/internal/server"
	"atf/internal/server/client"
)

// daemon is one atfd instance under test: a Manager plus its HTTP server
// on a loopback port.
type daemon struct {
	manager *server.Manager
	srv     *http.Server
	base    string
}

func startDaemon(t *testing.T, dir string) *daemon {
	t.Helper()
	m, err := server.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: (&server.API{Manager: m}).Handler()}
	go srv.Serve(ln)
	return &daemon{manager: m, srv: srv, base: "http://" + ln.Addr().String()}
}

// kill is the SIGKILL-equivalent: the HTTP server dies and the manager
// interrupts every run without writing done records, leaving the journals
// resumable.
func (d *daemon) kill() {
	d.srv.Close()
	d.manager.Shutdown()
}

const e2eSpecJSON = `{
	"name": "e2e",
	"parameters": [
		{"name": "X", "range": {"interval": {"begin": 1, "end": 300}}},
		{"name": "Y", "range": {"interval": {"begin": 1, "end": 30}}}
	],
	"cost": {"kind": "expr", "expr": "(X - 250) * (X - 250) + Y", "delay_ns": 1000000},
	"technique": {"kind": "annealing"},
	"abort": {"evaluations": 200},
	"seed": 23,
	"parallelism": 2
}`

func parseE2ESpec(t *testing.T) *atf.Spec {
	t.Helper()
	spec, err := atf.ParseSpec([]byte(e2eSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestDaemonEndToEnd drives the full tuning-as-a-service loop over real
// HTTP: create a session, follow its NDJSON evaluation stream, kill the
// daemon mid-run, restart it on the same journal directory, and check the
// resumed session finishes identically to an uninterrupted control run.
func TestDaemonEndToEnd(t *testing.T) {
	ctx := context.Background()
	spec := parseE2ESpec(t)

	// Control: the same spec run start-to-finish in its own daemon.
	control := startDaemon(t, t.TempDir())
	defer control.kill()
	c0 := client.New(control.base)
	st0, err := c0.Create(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c0.Wait(ctx, st0.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if want.State != server.StateDone {
		t.Fatalf("control run ended %s (%s)", want.State, want.Error)
	}

	// Experiment: create, watch the stream, kill mid-run.
	dir := t.TempDir()
	d1 := startDaemon(t, dir)
	c1 := client.New(d1.base)
	st1, err := c1.Create(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st1.State != server.StateRunning {
		t.Fatalf("created session is %s", st1.State)
	}

	// Follow the live evaluation stream until a real prefix is in; each
	// record must arrive in index order.
	var streamed []server.EvalRecord
	streamCtx, cancelStream := context.WithCancel(ctx)
	err = c1.Evaluations(streamCtx, st1.ID, 0, func(rec server.EvalRecord) bool {
		if rec.Index != uint64(len(streamed)) {
			t.Errorf("stream out of order: got index %d at position %d", rec.Index, len(streamed))
		}
		streamed = append(streamed, rec)
		return len(streamed) < 30
	})
	cancelStream()
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) < 30 {
		t.Fatalf("streamed only %d evaluations", len(streamed))
	}

	d1.kill()

	// Restart on the same journal directory; the session resumes.
	d2 := startDaemon(t, dir)
	defer d2.kill()
	resumed, err := d2.manager.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 {
		t.Fatalf("resumed %d sessions, want 1", len(resumed))
	}
	c2 := client.New(d2.base)
	st2, err := c2.Status(ctx, st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ResumedEvaluations < len(streamed) {
		t.Errorf("resumed %d evaluations, streamed %d before the kill",
			st2.ResumedEvaluations, len(streamed))
	}

	// The resumed stream replays the journaled prefix byte-identically.
	var replayed []server.EvalRecord
	err = c2.Evaluations(ctx, st1.ID, 0, func(rec server.EvalRecord) bool {
		replayed = append(replayed, rec)
		return len(replayed) < len(streamed)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range streamed {
		if replayed[i].Key != rec.Key || replayed[i].Index != rec.Index {
			t.Fatalf("replayed evaluation %d = %s, streamed %s before kill",
				i, replayed[i].Key, rec.Key)
		}
	}

	final, err := c2.Wait(ctx, st1.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateDone {
		t.Fatalf("resumed run ended %s (%s)", final.State, final.Error)
	}
	if final.Divergence != "" {
		t.Fatalf("resumed run diverged: %s", final.Divergence)
	}
	if final.Evaluations != want.Evaluations || final.Valid != want.Valid {
		t.Errorf("resumed counters %d/%d, control %d/%d",
			final.Evaluations, final.Valid, want.Evaluations, want.Valid)
	}
	if !final.Best.Equal(want.Best) || final.BestCost.String() != want.BestCost.String() {
		t.Errorf("resumed best %v/%v, control %v/%v",
			final.Best, final.BestCost, want.Best, want.BestCost)
	}

	// Best endpoint agrees with the final status.
	best, err := c2.Best(ctx, st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Best.Equal(final.Best) || best.State != server.StateDone {
		t.Errorf("best endpoint %v/%s, status %v", best.Best, best.State, final.Best)
	}

	// Listing shows exactly the one session.
	list, err := c2.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st1.ID {
		t.Errorf("list = %+v", list)
	}
}

// TestDaemonCancelAndErrors covers the API's user-facing edges over HTTP:
// cancel, 404s, and spec validation surfacing as 400s.
func TestDaemonCancelAndErrors(t *testing.T) {
	ctx := context.Background()
	d := startDaemon(t, t.TempDir())
	defer d.kill()
	c := client.New(d.base)

	st, err := c.Create(ctx, parseE2ESpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	got, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != server.StateCanceled {
		t.Errorf("after cancel: %s", got.State)
	}
	if err := c.Cancel(ctx, st.ID); err == nil {
		t.Error("second cancel succeeded")
	}

	if _, err := c.Status(ctx, "no-such-session"); err == nil {
		t.Error("status of unknown session succeeded")
	}

	bad := parseE2ESpec(t)
	bad.Cost.Kind = "quantum"
	if _, err := c.Create(ctx, bad); err == nil {
		t.Error("bad spec accepted over HTTP")
	}
}
