package dist

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"sync"
	"time"

	"atf"
	"atf/internal/core"
	"atf/internal/server/client"
)

// WorkerOptions configures an eval worker.
type WorkerOptions struct {
	// Name labels the worker in coordinator listings and metrics.
	Name string
	// Parallelism is the size of each spec's evaluation pool and the
	// NDJSON flush chunk (0 = NumCPU).
	Parallelism int
}

// WorkerServer is the serving side of an eval worker (cmd/atf-worker):
// it receives batch partitions on POST /v1/eval, evaluates them with an
// in-process pool built from the request's spec, and streams outcomes
// back as NDJSON. Workers are stateless — the spec rides on every
// request — but cache built pools by spec hash so a tuning run pays the
// cost-function construction once.
type WorkerServer struct {
	name        string
	parallelism int

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup
	pools    map[[sha256.Size]byte]*core.PoolEvaluator
}

// NewWorkerServer creates a worker server.
func NewWorkerServer(opts WorkerOptions) *WorkerServer {
	parallelism := opts.Parallelism
	if parallelism < 1 {
		parallelism = runtime.NumCPU()
	}
	return &WorkerServer{
		name:        opts.Name,
		parallelism: parallelism,
		pools:       make(map[[sha256.Size]byte]*core.PoolEvaluator),
	}
}

// Handler serves the worker's endpoints: POST /v1/eval and GET
// /v1/healthz.
func (s *WorkerServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/eval", s.handleEval)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "name": s.name})
	})
	return mux
}

// handleEval evaluates one partition and streams EvalResult lines.
// Results are written and flushed in pool-sized chunks, so a worker
// killed mid-partition has already delivered every finished chunk — the
// coordinator keeps those records and re-dispatches only the rest.
func (s *WorkerServer) handleEval(w http.ResponseWriter, r *http.Request) {
	// Register as in-flight under the lock so Close either sees this
	// request and waits for it, or marks closed before it starts.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeJSONError(w, http.StatusServiceUnavailable, "worker shutting down")
		return
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()

	var req EvalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad eval request: %v", err)
		return
	}
	if req.Spec == nil {
		writeJSONError(w, http.StatusBadRequest, "eval request has no spec")
		return
	}
	pool, err := s.pool(req.Spec)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "building evaluator: %v", err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for start := 0; start < len(req.Configs); start += s.parallelism {
		if r.Context().Err() != nil {
			return // coordinator gave up; stop evaluating
		}
		end := start + s.parallelism
		if end > len(req.Configs) {
			end = len(req.Configs)
		}
		outcomes, err := pool.EvaluateBatch(r.Context(), req.BatchIndex, req.Configs[start:end])
		if err != nil {
			return // stream ends torn; the coordinator re-dispatches
		}
		for i, o := range outcomes {
			rec := EvalResult{BatchIndex: req.BatchIndex, Index: start + i, Cost: o.Cost}
			if o.Err != nil {
				rec.Error = o.Err.Error()
			}
			if err := enc.Encode(rec); err != nil {
				return
			}
			mServedEvals.Add(1)
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// pool returns the evaluation pool for a spec, building it on first use.
// Specs are keyed by the hash of their canonical JSON form; the pool
// caches costs per configuration exactly like a local run with the
// spec's cache setting.
func (s *WorkerServer) pool(spec *atf.Spec) (*core.PoolEvaluator, error) {
	data, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	key := sha256.Sum256(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.pools[key]; ok {
		return p, nil
	}
	build, err := spec.Build()
	if err != nil {
		return nil, err
	}
	cache := true
	if spec.CacheCosts != nil {
		cache = *spec.CacheCosts
	}
	pool, err := core.NewPoolEvaluator(build.Cost, s.parallelism, cache)
	if err != nil {
		return nil, err
	}
	s.pools[key] = pool
	return pool, nil
}

// Close rejects new eval requests, waits for in-flight ones to drain
// (the HTTP server's shutdown cancels their contexts, so they finish
// their current chunk and return), then releases every cached pool.
func (s *WorkerServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.inflight.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, p := range s.pools {
		p.Close()
		delete(s.pools, key)
	}
	return nil
}

// errHeartbeatUnknown marks a 404 on the id-heartbeat endpoint: the
// coordinator does not know the worker's id, which after a successful
// registration can only mean the coordinator restarted and lost its
// registry. The cure is a fresh full registration, not a retry.
var errHeartbeatUnknown = errors.New("dist: coordinator does not know this worker id")

// RunHeartbeat registers the worker with the coordinator, then keeps it
// live with lightweight id-based heartbeats at the interval the
// coordinator announces, until ctx cancels. Transient failures — a down
// or restarting coordinator — are retried forever under the shared
// backoff policy, so a worker started before its coordinator joins the
// fleet as soon as it comes up. A heartbeat answered 404 means the
// coordinator restarted and lost the registry: the worker immediately
// re-registers in full instead of going silent. Only a permanent
// rejection of the registration itself (a 4xx, e.g. a malformed
// advertise URL) stops the loop.
func RunHeartbeat(ctx context.Context, httpc *http.Client, coordinatorURL string, reg RegisterRequest, logf func(format string, args ...any)) error {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	retry := client.RetryPolicy{Attempts: 5}
	interval := 2 * time.Second
	id := ""
	for {
		var resp RegisterResponse
		var err error
		if id == "" {
			err = retry.Do(ctx, func() error {
				return registerOnce(ctx, httpc, coordinatorURL, reg, &resp)
			})
		} else {
			err = retry.Do(ctx, func() error {
				return heartbeatOnce(ctx, httpc, coordinatorURL, id, &resp)
			})
		}
		switch {
		case ctx.Err() != nil:
			return ctx.Err()
		case err == nil:
			if hb := time.Duration(resp.HeartbeatMs) * time.Millisecond; hb > 0 {
				interval = hb
			}
			if id != resp.ID {
				id = resp.ID
				logf("registered with %s as %s (heartbeat %v)", coordinatorURL, id, interval)
			}
		case errors.Is(err, errHeartbeatUnknown):
			logf("heartbeat: coordinator lost worker %s (restarted?); re-registering", id)
			id = ""
			continue // re-register right away, not a heartbeat later
		case client.IsTransient(err):
			// Coordinator down: keep knocking at the heartbeat cadence. The
			// id is kept — if the same process recovers the heartbeat goes
			// through, and a restarted one answers 404 above.
			logf("heartbeat: %v (retrying)", err)
		default:
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(interval):
		}
	}
}

// heartbeatOnce POSTs one id-based heartbeat. A 404 maps to
// errHeartbeatUnknown; transport failures and 5xx are transient.
func heartbeatOnce(ctx context.Context, httpc *http.Client, coordinatorURL, id string, resp *RegisterResponse) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		coordinatorURL+"/v1/workers/"+url.PathEscape(id)+"/heartbeat", nil)
	if err != nil {
		return err
	}
	res, err := httpc.Do(req)
	if err != nil {
		return client.Transient(err)
	}
	defer res.Body.Close()
	switch {
	case res.StatusCode == http.StatusOK:
		return json.NewDecoder(res.Body).Decode(resp)
	case res.StatusCode == http.StatusNotFound:
		return errHeartbeatUnknown
	default:
		msg, _ := io.ReadAll(io.LimitReader(res.Body, 1024))
		err := fmt.Errorf("dist: heartbeat with %s: %s: %s", coordinatorURL, res.Status, bytes.TrimSpace(msg))
		if client.TransientStatus(res.StatusCode) {
			return client.Transient(err)
		}
		return err
	}
}

// registerOnce POSTs one registration. Registration is idempotent by
// design (workers are keyed by URL), so every transport failure and 5xx
// is transient.
func registerOnce(ctx context.Context, httpc *http.Client, coordinatorURL string, reg RegisterRequest, resp *RegisterResponse) error {
	body, err := json.Marshal(reg)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, coordinatorURL+"/v1/workers", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := httpc.Do(req)
	if err != nil {
		return client.Transient(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK && res.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(res.Body, 1024))
		err := fmt.Errorf("dist: register with %s: %s: %s", coordinatorURL, res.Status, bytes.TrimSpace(msg))
		if client.TransientStatus(res.StatusCode) {
			return client.Transient(err)
		}
		return err
	}
	return json.NewDecoder(res.Body).Decode(resp)
}
