package core

import "testing"

// ctx builds a partial configuration with the given assignments, in order.
func ctx(names []string, vals ...Value) *Config {
	c := NewConfig(names)
	for i, v := range vals {
		c.set(i, v)
	}
	return c
}

func TestDivides(t *testing.T) {
	// The paper's saxpy example: WPT must divide N.
	const N = 12
	ct := Divides(N)
	empty := ctx(nil)
	for _, v := range []int64{1, 2, 3, 4, 6, 12} {
		if !ct.Check(Int(v), empty) {
			t.Errorf("%d should divide %d", v, N)
		}
	}
	for _, v := range []int64{5, 7, 8, 9, 10, 11, 13} {
		if ct.Check(Int(v), empty) {
			t.Errorf("%d should not divide %d", v, N)
		}
	}
	if ct.Check(Int(0), empty) {
		t.Error("zero never divides")
	}
}

func TestDividesExpr(t *testing.T) {
	// LS must divide N/WPT (Listing 2, line 12).
	const N = 24
	names := []string{"WPT", "LS"}
	ct := Divides(func(c *Config) int64 { return N / c.Int("WPT") })
	c := ctx(names, Int(4)) // N/WPT = 6
	for _, v := range []int64{1, 2, 3, 6} {
		if !ct.Check(Int(v), c) {
			t.Errorf("LS=%d should divide 6", v)
		}
	}
	if ct.Check(Int(4), c) || ct.Check(Int(5), c) {
		t.Error("4 and 5 do not divide 6")
	}
}

func TestIsMultipleOf(t *testing.T) {
	ct := IsMultipleOf(4)
	empty := ctx(nil)
	if !ct.Check(Int(8), empty) || !ct.Check(Int(4), empty) || !ct.Check(Int(0), empty) {
		t.Error("multiples of 4 rejected")
	}
	if ct.Check(Int(6), empty) {
		t.Error("6 is not a multiple of 4")
	}
	zero := IsMultipleOf(0)
	if zero.Check(Int(5), empty) {
		t.Error("nothing is a multiple of 0")
	}
}

func TestComparisonAliases(t *testing.T) {
	empty := ctx(nil)
	if !LessThan(5).Check(Int(4), empty) || LessThan(5).Check(Int(5), empty) {
		t.Error("LessThan broken")
	}
	if !GreaterThan(5).Check(Int(6), empty) || GreaterThan(5).Check(Int(5), empty) {
		t.Error("GreaterThan broken")
	}
	if !LessEqual(5).Check(Int(5), empty) || LessEqual(5).Check(Int(6), empty) {
		t.Error("LessEqual broken")
	}
	if !GreaterEqual(5).Check(Int(5), empty) || GreaterEqual(5).Check(Int(4), empty) {
		t.Error("GreaterEqual broken")
	}
	if !Equal(5).Check(Int(5), empty) || Equal(5).Check(Int(4), empty) {
		t.Error("Equal broken")
	}
	if !Unequal(5).Check(Int(4), empty) || Unequal(5).Check(Int(5), empty) {
		t.Error("Unequal broken")
	}
}

func TestExprOf(t *testing.T) {
	empty := ctx(nil)
	if ExprOf(7).Eval(empty) != 7 {
		t.Error("int literal expr")
	}
	if ExprOf(int32(7)).Eval(empty) != 7 || ExprOf(int64(7)).Eval(empty) != 7 {
		t.Error("sized literal expr")
	}
	if ExprOf(uint(7)).Eval(empty) != 7 || ExprOf(uint64(7)).Eval(empty) != 7 {
		t.Error("unsigned literal expr")
	}
	if ExprOf(Lit(9)).Eval(empty) != 9 {
		t.Error("Expr passthrough")
	}
	f := func(c *Config) int64 { return 3 }
	if ExprOf(f).Eval(empty) != 3 {
		t.Error("func expr")
	}
}

func TestExprOfUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExprOf("nope")
}

func TestRefAndLit(t *testing.T) {
	c := ctx([]string{"WGD"}, Int(32))
	if Ref("WGD").Eval(c) != 32 {
		t.Error("Ref broken")
	}
	if Lit(5).Eval(c) != 5 {
		t.Error("Lit broken")
	}
}

func TestAndOrNot(t *testing.T) {
	empty := ctx(nil)
	even := IntPred(func(v int64) bool { return v%2 == 0 })
	big := IntPred(func(v int64) bool { return v > 10 })

	and := And(even, big)
	if !and.Check(Int(12), empty) || and.Check(Int(12+1), empty) || and.Check(Int(2), empty) {
		t.Error("And broken")
	}
	// Zero-value elements are always-true.
	if !And(Constraint{}, even).Check(Int(2), empty) {
		t.Error("And with zero constraint broken")
	}

	or := Or(even, big)
	if !or.Check(Int(2), empty) || !or.Check(Int(11), empty) || or.Check(Int(7), empty) {
		t.Error("Or broken")
	}
	if !Or().Check(Int(7), empty) {
		t.Error("empty Or should accept")
	}
	if !Or(Constraint{}).Check(Int(7), empty) {
		t.Error("Or of zero constraints should accept")
	}

	if Not(even).Check(Int(2), empty) || !Not(even).Check(Int(3), empty) {
		t.Error("Not broken")
	}
}

func TestPredAdapters(t *testing.T) {
	empty := ctx(nil)
	p := Pred(func(v Value) bool { return v.Kind() == KindInt })
	if !p.Check(Int(1), empty) || p.Check(Str("x"), empty) {
		t.Error("Pred broken")
	}
	ip := IntPred(func(v int64) bool { return v == 3 })
	if !ip.Check(Int(3), empty) || ip.Check(Int(4), empty) {
		t.Error("IntPred broken")
	}
}

func TestDividesOnBooleanParam(t *testing.T) {
	// Boolean parameters promote to 0/1 in integral constraints, as in C++.
	empty := ctx(nil)
	ct := Divides(6)
	if !ct.Check(Bool(true), empty) {
		t.Error("true (1) divides 6")
	}
	if ct.Check(Bool(false), empty) {
		t.Error("false (0) never divides")
	}
}

func TestConstraintDeps(t *testing.T) {
	// Alias constraints report the referenced names of their expression.
	reads, exact := Divides(Ref("WGD")).Deps()
	if !exact || len(reads) != 1 || reads[0] != "WGD" {
		t.Errorf("Divides(Ref) deps = %v exact=%v, want [WGD] true", reads, exact)
	}
	// Constant expressions have an empty exact footprint.
	if reads, exact := LessThan(5).Deps(); !exact || len(reads) != 0 {
		t.Errorf("LessThan(5) deps = %v exact=%v, want [] true", reads, exact)
	}
	// Raw closures are unknown...
	if _, exact := Fn(func(Value, *Config) bool { return true }).Deps(); exact {
		t.Error("Fn should have an inexact footprint")
	}
	if _, exact := Divides(func(*Config) int64 { return 1 }).Deps(); exact {
		t.Error("Divides(raw func) should have an inexact footprint")
	}
	// ...unless annotated.
	reads, exact = FnReads(func(Value, *Config) bool { return true }, "A", "B", "A").Deps()
	if !exact || len(reads) != 2 || reads[0] != "A" || reads[1] != "B" {
		t.Errorf("FnReads deps = %v exact=%v, want [A B] true", reads, exact)
	}
	// And unions footprints; exactness is sticky across elements.
	reads, exact = And(Divides(Ref("A")), FnReads(func(Value, *Config) bool { return true }, "B")).Deps()
	if !exact || len(reads) != 2 {
		t.Errorf("And deps = %v exact=%v, want [A B] true", reads, exact)
	}
	if _, exact := And(Divides(Ref("A")), Fn(func(Value, *Config) bool { return true })).Deps(); exact {
		t.Error("And with an unknown element should be inexact")
	}
	// Parsed expressions are exact with their referenced names.
	reads, exact = Divides(MustParseExpr("WGD / MDIMCD")).Deps()
	if !exact || len(reads) != 2 {
		t.Errorf("parsed-expr deps = %v exact=%v, want [WGD MDIMCD] true", reads, exact)
	}
	// The zero Constraint reads nothing, exactly.
	if reads, exact := (Constraint{}).Deps(); !exact || len(reads) != 0 {
		t.Errorf("zero constraint deps = %v exact=%v, want [] true", reads, exact)
	}
}
