package server

import (
	"testing"

	"atf"
	"atf/internal/obs"
	"atf/internal/oclc"
)

// warmSpecJSON is a small lazy-mode saxpy run: lazy construction runs the
// census pass (what the persisted snapshot must skip on a warm start) and
// the OpenCL cost function compiles one kernel per configuration (what the
// persisted compile manifest must prewarm).
const warmSpecJSON = `{
	"name": "warm start",
	"parameters": [
		{"name": "WPT", "range": {"interval": {"begin": 1, "end": 64}},
		 "constraints": [{"op": "divides", "expr": "64"}]},
		{"name": "LS", "range": {"interval": {"begin": 1, "end": 64}},
		 "constraints": [{"op": "divides", "expr": "64 / WPT"}]}
	],
	"cost": {"kind": "saxpy", "n": 64},
	"space_mode": "lazy"
}`

// TestManagerWarmStartState is the warm-restart contract: a daemon with a
// state directory persists its census, outcomes and compile manifest at
// shutdown, and a fresh daemon on the same state directory runs an
// identical session with zero census counting passes, zero kernel
// compiles, and zero cost-cache misses.
func TestManagerWarmStartState(t *testing.T) {
	spec, err := atf.ParseSpec([]byte(warmSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	stateDir := t.TempDir()

	// Cold daemon: generate, count, compile, evaluate; save at shutdown.
	m1, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m1.SharedCostCacheBytes = 1 << 20
	if err := m1.OpenState(stateDir, 0); err != nil {
		t.Fatal(err)
	}
	s1, err := m1.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	s1.Wait()
	st1 := s1.Status()
	if st1.State != StateDone {
		t.Fatalf("cold run ended %s (%s)", st1.State, st1.Error)
	}
	m1.Shutdown()

	// A new process starts with an empty compile cache; simulate that.
	oclc.ResetCompileCache()

	snap0 := obs.Default().Snapshot()
	censusRuns0 := snap0.Counter("atf_space_census_runs_total").Value
	censusRestored0 := snap0.Counter("atf_space_census_restored_total").Value
	compileWarm0 := snap0.Counter("atf_state_hit_compile_total").Value
	outcomeWarm0 := snap0.Counter("atf_state_hit_outcomes_total").Value

	// Warm daemon: same state dir, fresh journal dir (a new session, not a
	// resume — the warm start must come from the state store alone).
	m2, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m2.SharedCostCacheBytes = 1 << 20
	if err := m2.OpenState(stateDir, 0); err != nil {
		t.Fatal(err)
	}
	defer m2.Shutdown()
	snap1 := obs.Default().Snapshot()
	if got := snap1.Counter("atf_state_hit_compile_total").Value; got <= compileWarm0 {
		t.Errorf("compile manifest prewarmed nothing (counter %d -> %d)", compileWarm0, got)
	}
	if got := snap1.Counter("atf_state_hit_outcomes_total").Value; got <= outcomeWarm0 {
		t.Errorf("no outcomes restored into the shared cache (counter %d -> %d)", outcomeWarm0, got)
	}
	_, missesAfterOpen := oclc.CompileCacheStats()

	s2, err := m2.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	s2.Wait()
	st2 := s2.Status()
	if st2.State != StateDone {
		t.Fatalf("warm run ended %s (%s)", st2.State, st2.Error)
	}
	if st2.Evaluations != st1.Evaluations || !st2.Best.Equal(st1.Best) {
		t.Errorf("warm run result differs: %d evals best %v, cold %d evals best %v",
			st2.Evaluations, st2.Best, st1.Evaluations, st1.Best)
	}

	snap2 := obs.Default().Snapshot()
	if got := snap2.Counter("atf_space_census_runs_total").Value; got != censusRuns0 {
		t.Errorf("warm session ran %d census counting passes, want 0", got-censusRuns0)
	}
	if got := snap2.Counter("atf_space_census_restored_total").Value; got <= censusRestored0 {
		t.Errorf("warm session restored no census (counter %d -> %d)", censusRestored0, got)
	}
	if _, misses := oclc.CompileCacheStats(); misses != missesAfterOpen {
		t.Errorf("warm session compiled %d kernels, want 0", misses-missesAfterOpen)
	}
	_, misses, _, _, _ := m2.sharedCosts.stats()
	if misses != 0 {
		t.Errorf("warm session missed the shared cost cache %d times, want 0", misses)
	}
}

// TestOutcomeCacheDumpLoad: the persisted outcome dump restores completed
// entries (costs and cached errors) in MRU order and respects the budget.
func TestOutcomeCacheDumpLoad(t *testing.T) {
	c := newOutcomeCache(-0) // 0 = no budget enforcement path below
	c.budget = -1            // unbounded
	for i, key := range []string{"a", "b", "c"} {
		cost := atf.Cost{float64(i)}
		c.getOrCompute("scope|"+key, func() (atf.Cost, error) { return cost, nil })
	}
	c.getOrCompute("scope|err", func() (atf.Cost, error) { return nil, errDumpTest })

	data := c.dump()
	if data == nil {
		t.Fatal("dump returned nil")
	}
	fresh := newOutcomeCache(-1)
	if n := fresh.load(data); n != 4 {
		t.Fatalf("restored %d entries, want 4", n)
	}
	for i, key := range []string{"a", "b", "c"} {
		cost, err := fresh.getOrCompute("scope|"+key, func() (atf.Cost, error) {
			t.Fatalf("restored key %q recomputed", key)
			return nil, nil
		})
		if err != nil || len(cost) != 1 || cost[0] != float64(i) {
			t.Fatalf("restored %q = %v, %v", key, cost, err)
		}
	}
	if _, err := fresh.getOrCompute("scope|err", func() (atf.Cost, error) {
		t.Fatal("restored error recomputed")
		return nil, nil
	}); err == nil || err.Error() != errDumpTest.Error() {
		t.Fatalf("restored error = %v, want %v", err, errDumpTest)
	}
	hits, misses, _, _, _ := fresh.stats()
	if misses != 0 || hits != 4 {
		t.Fatalf("restored cache stats: %d hits %d misses, want 4/0", hits, misses)
	}

	// A tight budget sheds the dump's cold (LRU) tail on load.
	tight := newOutcomeCache(400)
	n := tight.load(data)
	_, _, _, bytes, entries := tight.stats()
	if bytes > 400 || entries >= 4 || n != 4 {
		t.Fatalf("budgeted load kept %d entries / %d bytes (restored %d)", entries, bytes, n)
	}
}

var errDumpTest = errTest("boom")

type errTest string

func (e errTest) Error() string { return string(e) }
