// Package opencl is a simulated OpenCL host API over the oclc interpreter
// and the perfmodel timing model. It reproduces the slice of the OpenCL
// object model that ATF's pre-implemented OpenCL cost function drives:
// platform/device discovery by name, contexts, buffers, program builds with
// -D options (tuning-parameter substitution), kernels with positional
// arguments, NDRange enqueue, and profiling events that report the
// (simulated) kernel execution time.
package opencl

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"atf/internal/obs"
	"atf/internal/oclc"
	"atf/internal/perfmodel"
)

// Simulated device-queue metrics (DESIGN.md §3c): every EnqueueNDRange is
// one enqueue→profile round trip, the unit tuning cost functions pay per
// configuration.
var (
	mEnqueues = obs.NewCounter("atf_opencl_enqueues_total",
		"Kernel launches enqueued on the simulated device queue")
	mEnqueueFailed = obs.NewCounter("atf_opencl_enqueue_failures_total",
		"Enqueues rejected (bad NDRange, work-group limit) or failed in execution")
	mEnqueueSeconds = obs.NewHistogram("atf_opencl_enqueue_seconds",
		"Wall-clock enqueue-to-profile latency of one simulated kernel launch", nil)
)

// Platform is an OpenCL platform: a vendor name and its devices.
type Platform struct {
	Name    string
	Devices []*Device
}

// Device is a simulated OpenCL device.
type Device struct {
	Desc     *perfmodel.Device
	Platform string
}

// Name returns the device name.
func (d *Device) Name() string { return d.Desc.Name }

// Platforms enumerates the simulated platforms, sorted by name for
// deterministic discovery.
func Platforms() []*Platform {
	cat := perfmodel.Catalog()
	names := make([]string, 0, len(cat))
	for n := range cat {
		names = append(names, n)
	}
	sort.Strings(names)
	var ps []*Platform
	for _, n := range names {
		p := &Platform{Name: n}
		for _, d := range cat[n] {
			p.Devices = append(p.Devices, &Device{Desc: d, Platform: n})
		}
		ps = append(ps, p)
	}
	return ps
}

// FindDevice selects a device directly by platform and device name
// (substring match, case-insensitive) — the convenience ATF offers instead
// of CLTune's numeric platform/device ids (paper, Section III).
func FindDevice(platform, device string) (*Device, error) {
	for _, p := range Platforms() {
		if !strings.Contains(strings.ToLower(p.Name), strings.ToLower(platform)) {
			continue
		}
		for _, d := range p.Devices {
			if strings.Contains(strings.ToLower(d.Name()), strings.ToLower(device)) {
				return d, nil
			}
		}
	}
	return nil, fmt.Errorf("opencl: no device matching platform %q, device %q", platform, device)
}

// Context owns buffers for one device.
type Context struct {
	dev    *Device
	nextID int
}

// NewContext creates a context on the device.
func NewContext(dev *Device) *Context { return &Context{dev: dev} }

// Device returns the context's device.
func (c *Context) Device() *Device { return c.dev }

// Buffer is a device-side float32 buffer.
type Buffer struct {
	mem *oclc.Memory
}

// CreateBuffer allocates an n-element float32 buffer.
func (c *Context) CreateBuffer(n int) *Buffer {
	c.nextID++
	return &Buffer{mem: oclc.NewGlobalMemory(c.nextID, oclc.KFloat, 4, n)}
}

// CreateIntBuffer allocates an n-element int32 buffer.
func (c *Context) CreateIntBuffer(n int) *Buffer {
	c.nextID++
	return &Buffer{mem: oclc.NewGlobalMemory(c.nextID, oclc.KInt, 4, n)}
}

// Len returns the element count.
func (b *Buffer) Len() int { return b.mem.Len() }

// Write uploads host data (the simulated clEnqueueWriteBuffer).
func (b *Buffer) Write(data []float32) { b.mem.SetFloat32s(data) }

// Read downloads the buffer contents.
func (b *Buffer) Read() []float32 { return b.mem.Float32s() }

// FillRandom fills the buffer with deterministic pseudo-random values in
// [-2, 2] — ATF's default input for auto-tuning OpenCL kernels ("random
// data is the default input", Section II).
func (b *Buffer) FillRandom(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range b.mem.Data {
		b.mem.Data[i] = float64(rng.Float32()*4 - 2)
	}
}

// Program is OpenCL program source plus its built form.
type Program struct {
	ctx    *Context
	source string
	built  *oclc.Program
	opts   string
}

// CreateProgram wraps kernel source in a program object.
func (c *Context) CreateProgram(source string) *Program {
	return &Program{ctx: c, source: source}
}

// Build compiles the program with the given macro definitions — exactly
// how ATF substitutes tuning-parameter values: "cf_saxpy replaces in
// kernel's source code the tuning parameters' names by their corresponding
// values ... using the OpenCL preprocessor" (Section II). Builds go through
// oclc's shared compiled-program cache keyed by the define set, so
// rebuilding a previously seen configuration (annealing revisits, parallel
// exploration workers, post-tuning Verify) skips the preprocess/lex/parse
// pipeline entirely — the behaviour of a real OpenCL driver's program
// cache.
func (p *Program) Build(defines map[string]string) error {
	prog, err := oclc.CompileCached(p.source, defines)
	if err != nil {
		return fmt.Errorf("opencl: build failed: %w", err)
	}
	p.built = prog
	p.opts = oclc.BuildDefines(defines)
	return nil
}

// BuildOptions returns the -D option string of the last build (logs,
// tests).
func (p *Program) BuildOptions() string { return p.opts }

// Kernel is a built kernel with bound arguments.
type Kernel struct {
	prog *Program
	name string
	args []oclc.Arg
}

// CreateKernel looks up a __kernel function in the built program.
func (p *Program) CreateKernel(name string) (*Kernel, error) {
	if p.built == nil {
		return nil, fmt.Errorf("opencl: program not built")
	}
	if _, err := p.built.Kernel(name); err != nil {
		return nil, err
	}
	return &Kernel{prog: p, name: name}, nil
}

// SetArgs binds positional kernel arguments: int32/int64/int (integer
// scalars), float32/float64 (float scalars), or *Buffer.
func (k *Kernel) SetArgs(args ...any) error {
	k.args = k.args[:0]
	for i, a := range args {
		switch v := a.(type) {
		case int:
			k.args = append(k.args, oclc.IntArg(int64(v)))
		case int32:
			k.args = append(k.args, oclc.IntArg(int64(v)))
		case int64:
			k.args = append(k.args, oclc.IntArg(v))
		case float32:
			k.args = append(k.args, oclc.FloatArg(float64(v)))
		case float64:
			k.args = append(k.args, oclc.FloatArg(v))
		case *Buffer:
			k.args = append(k.args, oclc.BufArg(v.mem))
		default:
			return fmt.Errorf("opencl: unsupported kernel argument %d of type %T", i, a)
		}
	}
	return nil
}

// Queue issues work to a device.
type Queue struct {
	ctx *Context
	// Functional forces full NDRange execution (correctness checking);
	// the default profiles a sampled work-group and extrapolates, like
	// tuning runs that never read results back (Section II: "we refrain
	// from downloading the data").
	Functional bool
	// Jitter is the relative measurement-noise amplitude (default 1%).
	Jitter float64
	// Engine selects the oclc execution engine for launches from this
	// queue; the zero value (EngineDefault) uses the process default set
	// by SetDefaultEngine / the -engine flag.
	Engine oclc.Engine
}

// NewQueue creates a command queue with profiling enabled.
func NewQueue(ctx *Context) *Queue { return &Queue{ctx: ctx, Jitter: 0.01} }

// Event carries profiling information of one enqueued kernel, as the
// OpenCL profiling API would.
type Event struct {
	Estimate *perfmodel.Estimate
	Exec     *oclc.ExecResult
}

// DurationNs returns the simulated kernel execution time.
func (e *Event) DurationNs() float64 { return e.Estimate.TimeNs }

// EnqueueNDRange launches a kernel over global/local sizes (1 or 2
// dimensions) and blocks until the simulated execution finishes.
func (q *Queue) EnqueueNDRange(k *Kernel, global, local []int64) (*Event, error) {
	start := time.Now()
	ev, err := q.enqueueNDRange(k, global, local)
	mEnqueues.Inc()
	mEnqueueSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		mEnqueueFailed.Inc()
	}
	return ev, err
}

func (q *Queue) enqueueNDRange(k *Kernel, global, local []int64) (*Event, error) {
	if len(global) != len(local) || len(global) < 1 || len(global) > 2 {
		return nil, fmt.Errorf("opencl: global/local must both be 1-D or 2-D")
	}
	var cfg oclc.LaunchConfig
	if len(global) == 1 {
		cfg = oclc.NDRange1D(global[0], local[0])
	} else {
		cfg = oclc.NDRange2D(global[0], global[1], local[0], local[1])
	}

	// Reject work-group sizes beyond the device limit before executing,
	// as clEnqueueNDRangeKernel would.
	if cfg.WorkGroupSize() > int64(q.ctx.dev.Desc.MaxWorkGroupSize) {
		return nil, fmt.Errorf("opencl: CL_INVALID_WORK_GROUP_SIZE: %d > %d",
			cfg.WorkGroupSize(), q.ctx.dev.Desc.MaxWorkGroupSize)
	}

	opts := oclc.ExecOptions{SampleGroups: 1, RecordAccesses: true}
	if q.Functional {
		opts = oclc.ExecOptions{}
	}
	opts.Engine = q.Engine
	res, err := k.prog.built.Launch(k.name, k.args, cfg, opts)
	if err != nil {
		return nil, err
	}
	model := &perfmodel.Model{Dev: q.ctx.dev.Desc, Jitter: q.Jitter}
	sig := fmt.Sprintf("%s|%s|%v|%v", k.name, k.prog.opts, global, local)
	est, err := model.EstimateLaunch(cfg, res, sig)
	if err != nil {
		return nil, err
	}
	return &Event{Estimate: est, Exec: res}, nil
}
