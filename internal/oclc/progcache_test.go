package oclc

import (
	"fmt"
	"sync"
	"testing"
)

const cacheTestKernel = `
__kernel void scale(__global float* x, const int n) {
  int i = get_global_id(0);
  if (i < n) x[i] = x[i] * FACTOR;
}
`

func TestCompileCachedHitsOnRepeat(t *testing.T) {
	ResetCompileCache()
	defer ResetCompileCache()
	defs := map[string]string{"FACTOR": "2"}
	p1, err := CompileCached(cacheTestKernel, defs)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CompileCached(cacheTestKernel, defs)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("repeat compile must return the cached *Program")
	}
	if hits, misses := CompileCacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

func TestCompileCachedKeysOnDefines(t *testing.T) {
	ResetCompileCache()
	defer ResetCompileCache()
	p2, err := CompileCached(cacheTestKernel, map[string]string{"FACTOR": "2"})
	if err != nil {
		t.Fatal(err)
	}
	p3, err := CompileCached(cacheTestKernel, map[string]string{"FACTOR": "3"})
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p3 {
		t.Fatal("distinct define sets must compile distinct programs")
	}
	if _, misses := CompileCacheStats(); misses != 2 {
		t.Fatalf("misses = %d, want 2", misses)
	}
}

func TestCompileCachedCachesErrors(t *testing.T) {
	ResetCompileCache()
	defer ResetCompileCache()
	const broken = `__kernel void b(__global float* x) { x[0] = ; }`
	if _, err := CompileCached(broken, nil); err == nil {
		t.Fatal("broken kernel must fail to compile")
	}
	if _, err := CompileCached(broken, nil); err == nil {
		t.Fatal("cached entry must keep the compile error")
	}
	if hits, misses := CompileCacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d hits, %d misses), want (1, 1): errors are cached too", hits, misses)
	}
}

func TestCompileCachedConcurrentDedup(t *testing.T) {
	ResetCompileCache()
	defer ResetCompileCache()
	const workers = 16
	progs := make([]*Program, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := CompileCached(cacheTestKernel, map[string]string{"FACTOR": "7"})
			if err != nil {
				t.Error(err)
				return
			}
			progs[w] = p
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if progs[w] != progs[0] {
			t.Fatal("concurrent requests for one key must share one Program")
		}
	}
	if _, misses := CompileCacheStats(); misses != 1 {
		t.Fatalf("misses = %d, want 1 (in-flight dedup)", misses)
	}
}

func TestCompileCacheEvictionBounded(t *testing.T) {
	ResetCompileCache()
	defer func() {
		SetCompileCacheBudget(DefaultCompileCacheBudget)
		ResetCompileCache()
	}()
	// Room for roughly four entries of this kernel's footprint.
	budget := 4 * progFootprint(cacheTestKernel, progCacheKey(cacheTestKernel, nil))
	SetCompileCacheBudget(budget)
	for i := 0; i < 40; i++ {
		if _, err := CompileCached(cacheTestKernel,
			map[string]string{"FACTOR": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	entries, bytes, evictions := CompileCacheUsage()
	if bytes > budget {
		t.Fatalf("cache holds %d estimated bytes, budget is %d", bytes, budget)
	}
	if entries == 0 || entries > 5 {
		t.Fatalf("cache holds %d entries, want a handful under the budget", entries)
	}
	if evictions == 0 {
		t.Fatal("overflowing the budget evicted nothing")
	}
}

func TestCompileCacheLRUKeepsHotEntries(t *testing.T) {
	ResetCompileCache()
	defer func() {
		SetCompileCacheBudget(DefaultCompileCacheBudget)
		ResetCompileCache()
	}()
	budget := 4 * progFootprint(cacheTestKernel, progCacheKey(cacheTestKernel, nil))
	SetCompileCacheBudget(budget)
	hot := map[string]string{"FACTOR": "9999"}
	if _, err := CompileCached(cacheTestKernel, hot); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		// Re-touch the hot entry between cold inserts: recency must keep
		// it resident while the cold entries churn through the budget.
		if _, err := CompileCached(cacheTestKernel, hot); err != nil {
			t.Fatal(err)
		}
		if _, err := CompileCached(cacheTestKernel,
			map[string]string{"FACTOR": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	hits0, misses0 := CompileCacheStats()
	if _, err := CompileCached(cacheTestKernel, hot); err != nil {
		t.Fatal(err)
	}
	hits1, misses1 := CompileCacheStats()
	if hits1 != hits0+1 || misses1 != misses0 {
		t.Fatalf("hot entry was evicted: stats went (%d,%d) -> (%d,%d)",
			hits0, misses0, hits1, misses1)
	}
}

func TestCompileCacheDisabledByZeroBudget(t *testing.T) {
	ResetCompileCache()
	defer func() {
		SetCompileCacheBudget(DefaultCompileCacheBudget)
		ResetCompileCache()
	}()
	SetCompileCacheBudget(0)
	defs := map[string]string{"FACTOR": "2"}
	p1, err := CompileCached(cacheTestKernel, defs)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CompileCached(cacheTestKernel, defs)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("a zero budget must disable caching entirely")
	}
	if hits, misses := CompileCacheStats(); hits != 0 || misses != 2 {
		t.Fatalf("stats = (%d hits, %d misses), want (0, 2)", hits, misses)
	}
	if entries, bytes, _ := CompileCacheUsage(); entries != 0 || bytes != 0 {
		t.Fatalf("disabled cache retains %d entries / %d bytes", entries, bytes)
	}
}
