package clblast

import (
	"fmt"

	"atf/internal/core"
)

// GemmShape is one GEMM problem: C(M×N) = A(M×K) · B(K×N).
type GemmShape struct {
	M, N, K int64
	Name    string
}

func (s GemmShape) String() string {
	if s.Name != "" {
		return fmt.Sprintf("%s (%dx%d · %dx%d)", s.Name, s.M, s.K, s.K, s.N)
	}
	return fmt.Sprintf("%dx%d · %dx%d", s.M, s.K, s.K, s.N)
}

// CaffeInputSizes are the four matrix input-size pairs from the paper's
// evaluation (Section VI), "heavily used in Caffe, e.g., in Caffe's sample
// siamese, and thus of great importance in the context of deep learning":
//
//	IS 1: 20×1   ·  1×576     IS 2: 20×25 · 25×576
//	IS 3: 50×1   ·  1×64      IS 4: 10×64 · 64×500
func CaffeInputSizes() []GemmShape {
	return []GemmShape{
		{Name: "IS1", M: 20, K: 1, N: 576},
		{Name: "IS2", M: 20, K: 25, N: 576},
		{Name: "IS3", M: 50, K: 1, N: 64},
		{Name: "IS4", M: 10, K: 64, N: 500},
	}
}

// XgemmDirectNames lists the kernel's ten tuning parameters in the
// declaration order used throughout this package.
var XgemmDirectNames = []string{
	"WGD", "KWID", "MDIMCD", "NDIMCD", "MDIMAD", "NDIMBD",
	"VWMD", "VWND", "PADA", "PADB",
}

// SpaceOptions configures the XgemmDirect tuning space.
type SpaceOptions struct {
	// RangeCap bounds the integer parameter ranges {1..RangeCap}. The
	// paper uses {1..N} for N×N inputs; for the rectangular deep-learning
	// shapes the experiments use a cap of 64 (all tile-like parameters
	// beyond the largest useful tile are redundant), and 1024 for the
	// routine's maximal supported size 2^10×2^10.
	RangeCap int64
	// GlobalSizeConstraints adds the two constraints a CLTune program
	// must impose — WGD divides M and WGD divides N — because CLTune
	// cannot express CLBlast's padded global size. ATF refrains from them
	// (paper §VI-A); setting this true reproduces the constrained variant
	// of experiment E5.
	GlobalSizeConstraints bool
	// Shape supplies M and N for the global-size constraints.
	Shape GemmShape
	// MaxWorkGroupSize and LocalMemBytes are device limits embedded as
	// constraints (defaults: 1024 and 48 KiB, the K20m's).
	MaxWorkGroupSize int64
	LocalMemBytes    int64
	// DivisorHints enables the divisor-hinted range iteration (a beyond-
	// paper optimization, see core.Param.WithDivisorHint): the five
	// WGD-divisibility-constrained parameters enumerate divisors of WGD
	// directly instead of scanning {1..cap}. The generated space is
	// identical; the divides-constrained levels iterate ~8x fewer
	// candidates (the overall win is bounded by the set-valued levels,
	// which are already small).
	DivisorHints bool
}

func (o *SpaceOptions) defaults() {
	if o.RangeCap == 0 {
		o.RangeCap = 64
	}
	if o.MaxWorkGroupSize == 0 {
		o.MaxWorkGroupSize = 1024
	}
	if o.LocalMemBytes == 0 {
		o.LocalMemBytes = 48 << 10
	}
}

// XgemmDirectParams builds the kernel's tuning space: 6 integer parameters
// with range {1..cap}, the two vector widths {1,2,4,8}, the two boolean
// paddings, and the kernel's interdependencies (17 constraints in total,
// counting the two optional global-size constraints — exactly the paper's
// tally for XgemmDirect).
//
// Constraint inventory (names in comments match the kernel source):
//
//  1. KWID divides WGD                      (k-loop bundling exact)
//  2. MDIMCD divides WGD                    (compute rows per thread exact)
//  3. NDIMCD divides WGD                    (compute cols per thread exact)
//  4. MDIMAD divides WGD                    (A-tile loader rows exact)
//  5. NDIMBD divides WGD                    (B-tile loader cols exact)
//  6. MDIMAD divides MDIMCD*NDIMCD          (A loader layout fits threads)
//  7. (MDIMCD*NDIMCD)/MDIMAD divides WGD    (A-tile k-loop exact)
//  8. NDIMBD divides MDIMCD*NDIMCD          (B loader layout fits threads)
//  9. (MDIMCD*NDIMCD)/NDIMBD divides WGD    (B-tile k-loop exact)
//  10. MDIMCD*NDIMCD <= max work-group size  (device limit)
//  11. VWMD divides WGD/MDIMCD               (M-vector blocking exact)
//  12. VWMD divides WGD/MDIMAD               (vectorized A loads possible)
//  13. VWND divides WGD/NDIMCD               (N-vector blocking exact)
//  14. VWND divides WGD/NDIMBD               (vectorized B loads possible)
//  15. local tiles fit local memory          (with PADA/PADB padding)
//  16. WGD divides M                         (optional, CLTune-style)
//  17. WGD divides N                         (optional, CLTune-style)
func XgemmDirectParams(opts SpaceOptions) []*core.Param {
	opts.defaults()
	cap := opts.RangeCap
	intRange := func() core.Range { return core.NewInterval(1, cap) }

	wgdConstraints := []core.Constraint{}
	if opts.GlobalSizeConstraints {
		wgdConstraints = append(wgdConstraints,
			core.Divides(opts.Shape.M), // 16
			core.Divides(opts.Shape.N), // 17
		)
	}
	wgd := core.NewParam("WGD", intRange(), wgdConstraints...)

	kwid := core.NewParam("KWID", intRange(),
		core.Divides(core.Ref("WGD"))) // 1

	mdimcd := core.NewParam("MDIMCD", intRange(),
		core.Divides(core.Ref("WGD"))) // 2

	// The raw Go predicates below declare their exact read footprints via
	// FnReads/ExprReads so dependency-aware subtree memoization can share
	// completion subtrees between prefixes (e.g. the PADA/PADB tail reads
	// only {WGD, PADA}, so the two leaf levels collapse to one tail per
	// WGD). The clblast deps-coverage test verifies the declarations
	// against the reads the predicates actually perform.
	ndimcd := core.NewParam("NDIMCD", intRange(), core.And(
		core.Divides(core.Ref("WGD")), // 3
		core.FnReads(func(v core.Value, c *core.Config) bool { // 10
			return c.Int("MDIMCD")*v.Int() <= opts.MaxWorkGroupSize
		}, "MDIMCD"),
	))

	mdimad := core.NewParam("MDIMAD", intRange(), core.And(
		core.Divides(core.Ref("WGD")), // 4
		core.FnReads(func(v core.Value, c *core.Config) bool {
			threads := c.Int("MDIMCD") * c.Int("NDIMCD")
			if threads%v.Int() != 0 { // 6
				return false
			}
			return c.Int("WGD")%(threads/v.Int()) == 0 // 7
		}, "WGD", "MDIMCD", "NDIMCD"),
	))

	ndimbd := core.NewParam("NDIMBD", intRange(), core.And(
		core.Divides(core.Ref("WGD")), // 5
		core.FnReads(func(v core.Value, c *core.Config) bool {
			threads := c.Int("MDIMCD") * c.Int("NDIMCD")
			if threads%v.Int() != 0 { // 8
				return false
			}
			return c.Int("WGD")%(threads/v.Int()) == 0 // 9
		}, "WGD", "MDIMCD", "NDIMCD"),
	))

	vwmd := core.NewParam("VWMD", core.NewSet(1, 2, 4, 8), core.And(
		core.Divides(core.ExprReads(func(c *core.Config) int64 { // 11
			return c.Int("WGD") / c.Int("MDIMCD")
		}, "WGD", "MDIMCD")),
		core.Divides(core.ExprReads(func(c *core.Config) int64 { // 12
			return c.Int("WGD") / c.Int("MDIMAD")
		}, "WGD", "MDIMAD")),
	))

	vwnd := core.NewParam("VWND", core.NewSet(1, 2, 4, 8), core.And(
		core.Divides(core.ExprReads(func(c *core.Config) int64 { // 13
			return c.Int("WGD") / c.Int("NDIMCD")
		}, "WGD", "NDIMCD")),
		core.Divides(core.ExprReads(func(c *core.Config) int64 { // 14
			return c.Int("WGD") / c.Int("NDIMBD")
		}, "WGD", "NDIMBD")),
	))

	pada := core.NewParam("PADA", core.BoolRange())
	padb := core.NewParam("PADB", core.BoolRange(), // 15
		core.FnReads(func(v core.Value, c *core.Config) bool {
			wgdV := c.Int("WGD")
			padaV := c.Value("PADA").Int()
			bytes := 4 * wgdV * ((wgdV + padaV) + (wgdV + v.Int()))
			return bytes <= opts.LocalMemBytes
		}, "WGD", "PADA"))

	if opts.DivisorHints {
		wgdRef := core.Ref("WGD")
		kwid.WithDivisorHint(wgdRef)
		mdimcd.WithDivisorHint(wgdRef)
		ndimcd.WithDivisorHint(wgdRef)
		mdimad.WithDivisorHint(wgdRef)
		ndimbd.WithDivisorHint(wgdRef)
	}

	return []*core.Param{wgd, kwid, mdimcd, ndimcd, mdimad, ndimbd, vwmd, vwnd, pada, padb}
}

// DefaultConfig returns XgemmDirect's compiled-in default parameter values
// (paper §VI-B: "the default parameter values are small, e.g., WGD=8 and
// KWID=1, causing a high parallelization"). These are the values the
// kernel falls back to when no device-specific tuning result exists.
func DefaultConfig() *core.Config {
	return core.ConfigFromMap(XgemmDirectNames, map[string]core.Value{
		"WGD":    core.Int(8),
		"KWID":   core.Int(1),
		"MDIMCD": core.Int(8),
		"NDIMCD": core.Int(8),
		"MDIMAD": core.Int(8),
		"NDIMBD": core.Int(8),
		"VWMD":   core.Int(1),
		"VWND":   core.Int(1),
		"PADA":   core.Bool(true),
		"PADB":   core.Bool(true),
	})
}

// RestrictedRanges reproduces CLBlast's CLTune tuner setup: the parameter
// ranges are artificially limited ("apparently because of CLTune's
// time-intensive process of search space generation", §VI-A), e.g. the
// tile size WGD to {8,16,32}.
func RestrictedRanges() map[string]core.Range {
	return map[string]core.Range{
		"WGD":    core.NewSet(8, 16, 32),
		"KWID":   core.NewSet(2, 8, 16),
		"MDIMCD": core.NewSet(8, 16, 32),
		"NDIMCD": core.NewSet(8, 16, 32),
		"MDIMAD": core.NewSet(8, 16, 32),
		"NDIMBD": core.NewSet(8, 16, 32),
		"VWMD":   core.NewSet(1, 2, 4, 8),
		"VWND":   core.NewSet(1, 2, 4, 8),
		"PADA":   core.BoolRange(),
		"PADB":   core.BoolRange(),
	}
}

// RestrictedParams builds the CLTune-program tuning space: restricted
// ranges plus all 17 constraints including the global-size divisibility
// pair (a CLTune program cannot express CLBlast's padded global size, so
// it must constrain WGD to divide the result matrix's rows and columns —
// the very constraints that empty the space on the deep-learning sizes).
func RestrictedParams(shape GemmShape, maxWG, localMem int64) []*core.Param {
	full := XgemmDirectParams(SpaceOptions{
		GlobalSizeConstraints: true,
		Shape:                 shape,
		MaxWorkGroupSize:      maxWG,
		LocalMemBytes:         localMem,
	})
	ranges := RestrictedRanges()
	out := make([]*core.Param, len(full))
	for i, p := range full {
		out[i] = core.NewParam(p.Name, ranges[p.Name])
		out[i].Constraint = p.Constraint
	}
	return out
}

// GlobalLocalSize computes CLBlast's host-side launch geometry for a
// configuration: the local size is the compute-thread grid
// (MDIMCD×NDIMCD), and the global size is *padded up* so that each
// work-group covers a WGD×WGD tile of C — an arithmetic expression over
// tuning parameters and constants that CLTune cannot express (§III).
func GlobalLocalSize(cfg *core.Config, shape GemmShape) (global, local [2]int64) {
	wgd := cfg.Int("WGD")
	mdimcd := cfg.Int("MDIMCD")
	ndimcd := cfg.Int("NDIMCD")
	tilesM := (shape.M + wgd - 1) / wgd
	tilesN := (shape.N + wgd - 1) / wgd
	global = [2]int64{tilesM * mdimcd, tilesN * ndimcd}
	local = [2]int64{mdimcd, ndimcd}
	return global, local
}

// ValidateConfig replays the full constraint chain over a complete
// configuration (used by the OpenTuner raw-space baseline's penalty check
// and by tests).
func ValidateConfig(cfg *core.Config, params []*core.Param) bool {
	partial := core.NewConfig(XgemmDirectNames)
	for i, p := range params {
		v := cfg.At(i)
		if !p.Accepts(v, partial) {
			return false
		}
		partial.SetAt(i, v)
	}
	return true
}
