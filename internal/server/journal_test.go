package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atf"
	"atf/internal/core"
)

func testSpec(t *testing.T) *atf.Spec {
	t.Helper()
	spec, err := atf.ParseSpec([]byte(`{
		"name": "journal test",
		"parameters": [{"name": "X", "range": {"interval": {"begin": 1, "end": 8}}}],
		"cost": {"kind": "expr", "expr": "X"},
		"seed": 5
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s1.jsonl")
	spec := testSpec(t)

	j, err := CreateJournal(path, "s1", "journal test", spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := configOf(t, spec, 3)
	evals := []EvalRecord{
		{Index: 0, Key: cfg.Key(), Config: cfg, Cost: atf.Cost{3}},
		{Index: 1, Key: cfg.Key(), Config: cfg, Cost: atf.Cost{3}, Cached: true},
		{Index: 2, Key: "err", Error: "device exploded", Cost: core.InfCost()},
	}
	for _, ev := range evals {
		ev := ev
		if err := j.Append(Record{Type: "eval", Eval: &ev}); err != nil {
			t.Fatal(err)
		}
	}
	done := &DoneRecord{State: "done", Evaluations: 3, Valid: 2, Best: cfg, BestCost: atf.Cost{3}}
	if err := j.Append(Record{Type: "done", Done: done}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	d, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Session != "s1" || d.Name != "journal test" || d.CreatedUnixNs != 42 {
		t.Errorf("header = %q/%q/%d", d.Session, d.Name, d.CreatedUnixNs)
	}
	if d.Spec == nil || d.Spec.Parameters[0].Name != "X" {
		t.Errorf("spec did not round-trip: %+v", d.Spec)
	}
	if len(d.Evals) != 3 || d.Evals[1].Cached != true || d.Evals[2].Error != "device exploded" {
		t.Errorf("evals = %+v", d.Evals)
	}
	if !d.Evals[2].Cost.IsInf() {
		t.Errorf("error eval cost = %v, want inf", d.Evals[2].Cost)
	}
	if d.Done == nil || d.Done.State != "done" || d.Done.Valid != 2 {
		t.Errorf("done = %+v", d.Done)
	}
	if d.Truncated {
		t.Error("clean journal reported truncated")
	}
}

func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.jsonl")
	spec := testSpec(t)
	j, err := CreateJournal(path, "torn", "", spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := configOf(t, spec, 2)
	for i := 0; i < 3; i++ {
		ev := EvalRecord{Index: uint64(i), Key: cfg.Key(), Config: cfg, Cost: atf.Cost{2}}
		if err := j.Append(Record{Type: "eval", Eval: &ev}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Simulate a crash mid-write: a torn final line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"type":"eval","eval":{"ind`)
	f.Close()

	d, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Truncated {
		t.Error("torn tail not detected")
	}
	if len(d.Evals) != 3 || d.Done != nil {
		t.Errorf("intact prefix lost: %d evals, done=%v", len(d.Evals), d.Done)
	}
}

func TestJournalOutOfSequenceTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seq.jsonl")
	spec := testSpec(t)
	j, err := CreateJournal(path, "seq", "", spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := configOf(t, spec, 4)
	ev := EvalRecord{Index: 0, Key: cfg.Key(), Config: cfg, Cost: atf.Cost{4}}
	if err := j.Append(Record{Type: "eval", Eval: &ev}); err != nil {
		t.Fatal(err)
	}
	ev.Index = 7 // gap: index 1..6 never written
	if err := j.Append(Record{Type: "eval", Eval: &ev}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	d, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Truncated || len(d.Evals) != 1 {
		t.Errorf("truncated=%v evals=%d, want true/1", d.Truncated, len(d.Evals))
	}
}

func TestJournalRejectsMissingSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nospec.jsonl")
	if err := os.WriteFile(path, []byte(`{"type":"eval","eval":{"index":0,"key":"1"}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournalFile(path); err == nil {
		t.Error("journal without spec header accepted")
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"GEMM on K20m":          "gemm-on-k20m",
		"   ":                   "session",
		"a_b.c d":               "a-b-c-d",
		strings.Repeat("x", 80): strings.Repeat("x", 40),
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// configOf builds a one-parameter configuration for the test spec.
func configOf(t *testing.T, spec *atf.Spec, x int64) *atf.Config {
	t.Helper()
	build, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	space, err := atf.GenerateSpace(0, build.Params...)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < space.Size(); i++ {
		cfg := space.At(i)
		if cfg.Int("X") == x {
			return cfg
		}
	}
	t.Fatalf("no config with X=%d", x)
	return nil
}

// TestJournalBatchRecords: batch-boundary records round-trip, interleave
// freely with evaluations, and deduplicate by batch index on read — the
// resumed-run case, where the mark at the replay boundary is appended a
// second time.
func TestJournalBatchRecords(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "batched.jsonl")
	spec := testSpec(t)

	j, err := CreateJournal(path, "batched", "batched", spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := configOf(t, spec, 2)
	append := func(rec Record) {
		t.Helper()
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	append(Record{Type: "batch", Batch: &BatchRecord{Index: 0, StartEval: 0, Size: 2}})
	append(Record{Type: "eval", Eval: &EvalRecord{Index: 0, Key: cfg.Key(), Config: cfg, Cost: atf.Cost{2}}})
	append(Record{Type: "eval", Eval: &EvalRecord{Index: 1, Key: cfg.Key(), Config: cfg, Cost: atf.Cost{2}, Cached: true}})
	append(Record{Type: "batch", Batch: &BatchRecord{Index: 1, StartEval: 2, Size: 2}})
	append(Record{Type: "eval", Eval: &EvalRecord{Index: 2, Key: cfg.Key(), Config: cfg, Cost: atf.Cost{2}}})
	// The resumed run re-journals the mark of the batch it was killed in.
	append(Record{Type: "batch", Batch: &BatchRecord{Index: 1, StartEval: 2, Size: 2}})
	append(Record{Type: "eval", Eval: &EvalRecord{Index: 3, Key: cfg.Key(), Config: cfg, Cost: atf.Cost{2}}})
	j.Close()

	d, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Truncated {
		t.Fatal("clean journal reported truncated")
	}
	if len(d.Evals) != 4 {
		t.Fatalf("read %d evaluations, want 4", len(d.Evals))
	}
	if len(d.Batches) != 2 {
		t.Fatalf("read %d batch marks after dedup, want 2", len(d.Batches))
	}
	for i, b := range d.Batches {
		if b.Index != uint64(i) || b.StartEval != uint64(2*i) || b.Size != 2 {
			t.Fatalf("batch mark %d = %+v", i, b)
		}
	}
}
