package oclc

import (
	"strconv"
	"strings"
)

// Lex tokenizes preprocessed OpenCL-C source. "#pragma unroll N" survives
// preprocessing as a dedicated token so the parser can attach the unroll
// hint to the following loop.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	adv := func(n int) {
		for k := 0; k < n; k++ {
			if src[i+k] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
	for i < len(src) {
		c := src[i]
		pos := Pos{Line: line, Col: col}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			adv(1)
		case c == '#':
			// Only #pragma survives preprocessing.
			j := i
			for j < len(src) && src[j] != '\n' {
				j++
			}
			text := src[i:j]
			fields := strings.Fields(text)
			if len(fields) >= 2 && fields[0] == "#pragma" && fields[1] == "unroll" {
				n := int64(-1) // bare "#pragma unroll" = full unroll
				if len(fields) >= 3 {
					v, err := strconv.ParseInt(strings.Trim(fields[2], "()"), 10, 64)
					if err != nil {
						return nil, errf(pos, "bad unroll factor %q", fields[2])
					}
					n = v
				}
				toks = append(toks, Token{Kind: TokPragma, Text: text, Int: n, Pos: pos})
			}
			// Other pragmas are hints we do not model; skip silently.
			adv(j - i)
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			toks = append(toks, Token{Kind: TokIdent, Text: src[i:j], Pos: pos})
			adv(j - i)
		case c >= '0' && c <= '9' || c == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			tok, n, err := lexNumber(src[i:], pos)
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
			adv(n)
		default:
			op, n := lexPunct(src[i:])
			if n == 0 {
				return nil, errf(pos, "unexpected character %q", string(c))
			}
			toks = append(toks, Token{Kind: TokPunct, Text: op, Pos: pos})
			adv(n)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: Pos{Line: line, Col: col}})
	return toks, nil
}

// lexNumber scans an integer or floating literal with C suffixes.
func lexNumber(s string, pos Pos) (Token, int, error) {
	j := 0
	isFloat := false
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		j = 2
		for j < len(s) && isHexDigit(s[j]) {
			j++
		}
		text := s[:j]
		n := j
		for n < len(s) && isIntSuffix(s[n]) {
			n++
		}
		v, err := strconv.ParseInt(text[2:], 16, 64)
		if err != nil {
			return Token{}, 0, errf(pos, "bad hex literal %q", text)
		}
		return Token{Kind: TokIntLit, Text: text, Int: v, Pos: pos}, n, nil
	}
	for j < len(s) && (s[j] >= '0' && s[j] <= '9') {
		j++
	}
	if j < len(s) && s[j] == '.' {
		isFloat = true
		j++
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
	}
	if j < len(s) && (s[j] == 'e' || s[j] == 'E') {
		k := j + 1
		if k < len(s) && (s[k] == '+' || s[k] == '-') {
			k++
		}
		if k < len(s) && s[k] >= '0' && s[k] <= '9' {
			isFloat = true
			j = k
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
		}
	}
	text := s[:j]
	n := j
	if isFloat {
		for n < len(s) && (s[n] == 'f' || s[n] == 'F') {
			n++
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, 0, errf(pos, "bad float literal %q", text)
		}
		return Token{Kind: TokFloatLit, Text: text, Flt: v, Pos: pos}, n, nil
	}
	if n < len(s) && (s[n] == 'f' || s[n] == 'F') {
		// "1f" style float literal.
		v, _ := strconv.ParseFloat(text, 64)
		return Token{Kind: TokFloatLit, Text: text, Flt: v, Pos: pos}, n + 1, nil
	}
	for n < len(s) && isIntSuffix(s[n]) {
		n++
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, 0, errf(pos, "bad int literal %q", text)
	}
	return Token{Kind: TokIntLit, Text: text, Int: v, Pos: pos}, n, nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func isIntSuffix(c byte) bool {
	return c == 'u' || c == 'U' || c == 'l' || c == 'L'
}

// punct3/punct2 list multi-character operators, longest first.
var punct3 = []string{"<<=", ">>="}
var punct2 = []string{
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
}

func lexPunct(s string) (string, int) {
	for _, p := range punct3 {
		if strings.HasPrefix(s, p) {
			return p, 3
		}
	}
	for _, p := range punct2 {
		if strings.HasPrefix(s, p) {
			return p, 2
		}
	}
	switch s[0] {
	case '+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '|', '^', '~',
		'(', ')', '[', ']', '{', '}', ',', ';', '?', ':', '.':
		return string(s[0]), 1
	}
	return "", 0
}
