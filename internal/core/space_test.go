package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce enumerates the valid configurations of a single group by
// filtering the full Cartesian product — the CLTune strategy — to serve as
// ground truth for the trie-based generator.
func bruteForce(params []*Param) []*Config {
	names := make([]string, len(params))
	for i, p := range params {
		names[i] = p.Name
	}
	var out []*Config
	cfg := NewConfig(names)
	var rec func(d int)
	rec = func(d int) {
		if d == len(params) {
			out = append(out, cfg.Clone())
			return
		}
		p := params[d]
		for i := 0; i < p.Range.Len(); i++ {
			v := p.Range.At(i)
			if !p.Accepts(v, cfg) {
				continue
			}
			cfg.set(d, v)
			rec(d + 1)
		}
	}
	rec(0)
	return out
}

// saxpyParams builds the paper's saxpy space: WPT divides N, LS divides
// N/WPT.
func saxpyParams(n int64) []*Param {
	wpt := NewParam("WPT", NewInterval(1, n), Divides(n))
	ls := NewParam("LS", NewInterval(1, n),
		Divides(func(c *Config) int64 { return n / c.Int("WPT") }))
	return []*Param{wpt, ls}
}

func TestGenerateMatchesBruteForce(t *testing.T) {
	params := saxpyParams(24)
	sp, err := GenerateFlat(params, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(params)
	if sp.Size() != uint64(len(want)) {
		t.Fatalf("size = %d, want %d", sp.Size(), len(want))
	}
	for i, w := range want {
		got := sp.At(uint64(i))
		if !got.Equal(w) {
			t.Fatalf("config %d = %v, want %v", i, got, w)
		}
	}
}

func TestGenerateAllConfigsSatisfyConstraints(t *testing.T) {
	const n = 36
	params := saxpyParams(n)
	sp, err := GenerateFlat(params, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sp.ForEach(func(_ uint64, cfg *Config) bool {
		wpt, ls := cfg.Int("WPT"), cfg.Int("LS")
		if n%wpt != 0 {
			t.Fatalf("WPT=%d does not divide %d", wpt, n)
		}
		if (n/wpt)%ls != 0 {
			t.Fatalf("LS=%d does not divide %d", ls, n/wpt)
		}
		return true
	})
}

func TestParallelEqualsSequential(t *testing.T) {
	params := saxpyParams(60)
	seq, err := GenerateFlat(params, GenOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := GenerateFlat(params, GenOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Size() != par.Size() {
		t.Fatalf("sizes differ: %d vs %d", seq.Size(), par.Size())
	}
	for i := uint64(0); i < seq.Size(); i++ {
		if !seq.At(i).Equal(par.At(i)) {
			t.Fatalf("config %d differs: %v vs %v", i, seq.At(i), par.At(i))
		}
	}
	if seq.Checks() != par.Checks() {
		t.Errorf("constraint-check counts differ: %d vs %d", seq.Checks(), par.Checks())
	}
}

func TestIndexRoundTrip(t *testing.T) {
	sp, err := GenerateFlat(saxpyParams(48), GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < sp.Size(); i++ {
		cfg := sp.At(i)
		j, ok := sp.IndexOf(cfg)
		if !ok || j != i {
			t.Fatalf("roundtrip failed: At(%d) -> IndexOf = (%d,%v)", i, j, ok)
		}
	}
}

func TestIndexOfRejectsForeignConfig(t *testing.T) {
	sp, err := GenerateFlat(saxpyParams(12), GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// WPT=5 does not divide 12, so this config is not in the space.
	bad := ConfigFromMap([]string{"WPT", "LS"}, map[string]Value{"WPT": Int(5), "LS": Int(1)})
	if _, ok := sp.IndexOf(bad); ok {
		t.Error("invalid config should not be found")
	}
	// Wrong arity.
	short := ConfigFromMap([]string{"WPT"}, map[string]Value{"WPT": Int(1)})
	if _, ok := sp.IndexOf(short); ok {
		t.Error("wrong-arity config should not be found")
	}
}

func TestConfigsAreUnique(t *testing.T) {
	sp, err := GenerateFlat(saxpyParams(36), GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	sp.ForEach(func(_ uint64, cfg *Config) bool {
		k := cfg.Key()
		if seen[k] {
			t.Fatalf("duplicate configuration %v", cfg)
		}
		seen[k] = true
		return true
	})
	if uint64(len(seen)) != sp.Size() {
		t.Fatalf("unique count %d != size %d", len(seen), sp.Size())
	}
}

func TestGroupedSpaceIsCrossProduct(t *testing.T) {
	// Figure 1 of the paper: {tp1, tp2 | tp2 divides tp1} × {tp3, tp4 | ...}.
	g1 := G(
		NewParam("tp1", NewSet(1, 2)),
		NewParam("tp2", NewSet(1, 2), Divides(Ref("tp1"))),
	)
	g2 := G(
		NewParam("tp3", NewSet(1, 2)),
		NewParam("tp4", NewSet(1, 2), Divides(Ref("tp3"))),
	)
	sp, err := GenerateSpace([]*Group{g1, g2}, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Per group: (1,1), (2,1), (2,2) → 3 configs; cross product = 9.
	if sp.Size() != 9 {
		t.Fatalf("size = %d, want 9", sp.Size())
	}
	// Every combination must satisfy both groups' constraints.
	sp.ForEach(func(_ uint64, cfg *Config) bool {
		if cfg.Int("tp1")%cfg.Int("tp2") != 0 {
			t.Fatalf("group 1 constraint violated: %v", cfg)
		}
		if cfg.Int("tp3")%cfg.Int("tp4") != 0 {
			t.Fatalf("group 2 constraint violated: %v", cfg)
		}
		return true
	})
	// Grouped result must equal the single-group (flat) result as a set.
	flat, err := GenerateFlat(FlattenGroups([]*Group{g1, g2}), GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Size() != sp.Size() {
		t.Fatalf("flat size %d != grouped size %d", flat.Size(), sp.Size())
	}
	seen := make(map[string]bool)
	sp.ForEach(func(_ uint64, cfg *Config) bool { seen[cfg.String()] = true; return true })
	flat.ForEach(func(_ uint64, cfg *Config) bool {
		if !seen[cfg.String()] {
			t.Fatalf("flat config %v missing from grouped space", cfg)
		}
		return true
	})
}

func TestGroupedIndexRoundTrip(t *testing.T) {
	g1 := G(NewParam("a", NewInterval(1, 5)))
	g2 := G(NewParam("b", NewInterval(1, 3)), NewParam("c", NewInterval(1, 4), Divides(Ref("b"))))
	sp, err := GenerateSpace([]*Group{g1, g2}, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < sp.Size(); i++ {
		j, ok := sp.IndexOf(sp.At(i))
		if !ok || j != i {
			t.Fatalf("grouped roundtrip failed at %d -> (%d,%v)", i, j, ok)
		}
	}
}

func TestCrossGroupReferenceFails(t *testing.T) {
	// tp2 in its own group referencing tp1 from another group must produce
	// a descriptive error, not a hang or silent wrong space.
	g1 := G(NewParam("tp1", NewSet(1, 2)))
	g2 := G(NewParam("tp2", NewSet(1, 2), Divides(Ref("tp1"))))
	_, err := GenerateSpace([]*Group{g1, g2}, GenOptions{})
	if err == nil {
		t.Fatal("expected error for cross-group constraint reference")
	}
}

func TestDuplicateParamAcrossGroupsFails(t *testing.T) {
	g1 := G(NewParam("x", NewSet(1)))
	g2 := G(NewParam("x", NewSet(2)))
	if _, err := GenerateSpace([]*Group{g1, g2}, GenOptions{}); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestEmptySpace(t *testing.T) {
	// Constraint rejecting everything → size 0 (the CLBlast deep-learning
	// situation from §VI-A where WGD's restricted range empties the space).
	p := NewParam("x", NewSet(3, 5, 7), Divides(8))
	sp, err := GenerateFlat([]*Param{p}, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Size() != 0 {
		t.Fatalf("size = %d, want 0", sp.Size())
	}
}

func TestDeadPrefixPruning(t *testing.T) {
	// a=2 admits no valid b, so the a=2 subtree must be pruned entirely.
	a := NewParam("a", NewSet(1, 2))
	b := NewParam("b", NewSet(3, 5), Divides(func(c *Config) int64 {
		if c.Int("a") == 2 {
			return 1 // 3 and 5 do not divide 1
		}
		return 15
	}))
	sp, err := GenerateFlat([]*Param{a, b}, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Size() != 2 { // (1,3), (1,5)
		t.Fatalf("size = %d, want 2", sp.Size())
	}
	sp.ForEach(func(_ uint64, cfg *Config) bool {
		if cfg.Int("a") == 2 {
			t.Fatal("dead prefix a=2 not pruned")
		}
		return true
	})
}

func TestRawSize(t *testing.T) {
	params := []*Param{
		NewParam("a", NewInterval(1, 1000)),
		NewParam("b", NewInterval(1, 1000)),
		NewParam("c", NewSet(1, 2, 4, 8)),
	}
	sp, err := GenerateFlat(params, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.RawSize().String() != "4000000" {
		t.Fatalf("raw size = %s, want 4000000", sp.RawSize())
	}
}

func TestRandomIsMember(t *testing.T) {
	sp, err := GenerateFlat(saxpyParams(64), GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		cfg := sp.Random(rng)
		if _, ok := sp.IndexOf(cfg); !ok {
			t.Fatalf("random config %v not a member", cfg)
		}
	}
}

func TestRandomCoversSpace(t *testing.T) {
	sp, err := GenerateFlat(saxpyParams(16), GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	hits := make(map[uint64]int)
	for i := 0; i < 4000; i++ {
		hits[sp.RandomIndex(rng)]++
	}
	if uint64(len(hits)) != sp.Size() {
		t.Fatalf("uniform sampling should hit all %d configs, hit %d", sp.Size(), len(hits))
	}
}

func TestNeighborStaysInSpace(t *testing.T) {
	sp, err := GenerateFlat(saxpyParams(48), GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	idx := sp.RandomIndex(rng)
	for i := 0; i < 1000; i++ {
		idx = sp.Neighbor(idx, rng)
		if idx >= sp.Size() {
			t.Fatalf("neighbor index %d out of range", idx)
		}
	}
}

func TestNeighborOnSingletonSpace(t *testing.T) {
	sp, err := GenerateFlat([]*Param{NewParam("only", NewSet(1))}, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if sp.Neighbor(0, rng) != 0 {
		t.Error("singleton space neighbor must be itself")
	}
}

func TestNeighborMoves(t *testing.T) {
	sp, err := GenerateFlat(saxpyParams(48), GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	moved := 0
	for i := 0; i < 100; i++ {
		if sp.Neighbor(5, rng) != 5 {
			moved++
		}
	}
	if moved < 90 {
		t.Errorf("neighbor should almost always move, moved %d/100", moved)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	sp, err := GenerateFlat(saxpyParams(12), GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sp.At(sp.Size())
}

func TestAutoGroupChains(t *testing.T) {
	p1 := NewParam("tp1", NewSet(1, 2))
	p2 := NewParam("tp2", NewSet(1, 2), Divides(Ref("tp1")))
	p3 := NewParam("tp3", NewSet(1, 2))
	p4 := NewParam("tp4", NewSet(1, 2), Divides(Ref("tp3")))
	groups := AutoGroup([]*Param{p1, p2, p3, p4})
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if len(groups[0].Params) != 2 || groups[0].Params[0].Name != "tp1" {
		t.Error("group 1 wrong")
	}
	if len(groups[1].Params) != 2 || groups[1].Params[0].Name != "tp3" {
		t.Error("group 2 wrong")
	}
	sp, err := GenerateSpace(groups, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Size() != 9 {
		t.Fatalf("size = %d, want 9", sp.Size())
	}
}

func TestGenerateRejectsNoParams(t *testing.T) {
	if _, err := GenerateSpace(nil, GenOptions{}); err == nil {
		t.Fatal("expected error for empty group list")
	}
}

func TestGroupPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	G()
}

func TestSpaceChecksAccounting(t *testing.T) {
	params := func() []*Param {
		return []*Param{
			NewParam("a", NewInterval(1, 3)),
			NewParam("b", NewInterval(1, 4)),
		}
	}
	// Without memoization, an unconstrained 2-param space of 3×4 performs
	// 3 (root) + 3*4 (children) = 15 constraint checks.
	sp, err := GenerateFlat(params(), GenOptions{Workers: 1, Memoize: MemoOff})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Checks() != 15 {
		t.Errorf("memo off: checks = %d, want 15", sp.Checks())
	}
	if sp.Size() != 12 {
		t.Errorf("size = %d, want 12", sp.Size())
	}
	// With memoization (the default), b reads nothing, so its level is
	// derived once and shared by all three roots: 3 + 4 = 7 checks.
	sp, err = GenerateFlat(params(), GenOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Checks() != 7 {
		t.Errorf("memo on: checks = %d, want 7", sp.Checks())
	}
	if sp.Size() != 12 {
		t.Errorf("size = %d, want 12", sp.Size())
	}
	hits, misses := sp.MemoStats()
	if hits != 2 || misses != 1 {
		t.Errorf("memo hits/misses = %d/%d, want 2/1", hits, misses)
	}
	logical, unique := sp.NodeCounts()
	if logical != 15 || unique != 7 {
		t.Errorf("nodes logical/unique = %d/%d, want 15/7", logical, unique)
	}
}

func TestNodeCountSharing(t *testing.T) {
	// 3×4 unconstrained: 3 roots + 12 leaves = 15 nodes, versus 24 values
	// in a materialized list — prefix sharing is the trie's advantage.
	sp, err := GenerateFlat([]*Param{
		NewParam("a", NewInterval(1, 3)),
		NewParam("b", NewInterval(1, 4)),
	}, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.NodeCount() != 15 {
		t.Errorf("node count = %d, want 15", sp.NodeCount())
	}
}

// Property: for arbitrary small constrained spaces, trie generation equals
// brute-force generate-then-filter in size and membership.
func TestQuickGenerateEquivalence(t *testing.T) {
	f := func(na, nb uint8, div uint8) bool {
		a := int64(na%12) + 1
		b := int64(nb%12) + 1
		d := int64(div%6) + 1
		params := []*Param{
			NewParam("a", NewInterval(1, a)),
			NewParam("b", NewInterval(1, b), Divides(func(c *Config) int64 {
				return c.Int("a") * d
			})),
		}
		sp, err := GenerateFlat(params, GenOptions{})
		if err != nil {
			return false
		}
		want := bruteForce(params)
		if sp.Size() != uint64(len(want)) {
			return false
		}
		for i, w := range want {
			if !sp.At(uint64(i)).Equal(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: index roundtrip holds on arbitrary grouped spaces.
func TestQuickGroupedRoundTrip(t *testing.T) {
	f := func(na, nb, nc uint8) bool {
		a := int64(na%6) + 1
		b := int64(nb%6) + 1
		c := int64(nc%6) + 1
		groups := []*Group{
			G(NewParam("a", NewInterval(1, a))),
			G(NewParam("b", NewInterval(1, b)),
				NewParam("c", NewInterval(1, c), Divides(Ref("b")))),
		}
		sp, err := GenerateSpace(groups, GenOptions{})
		if err != nil || sp.Size() == 0 {
			return err == nil
		}
		for i := uint64(0); i < sp.Size(); i++ {
			j, ok := sp.IndexOf(sp.At(i))
			if !ok || j != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
