package core

// BatchTechnique is the batched counterpart of Technique: instead of one
// configuration at a time, the technique hands the exploration engine a
// batch of configurations to evaluate concurrently and receives all their
// evaluations back at once, in batch order. Techniques that can propose
// several independent candidates per step (exhaustive, random, population
// methods) implement it directly; sequential techniques are adapted via
// Batcher.
type BatchTechnique interface {
	// Initialize is called once before exploration with the generated
	// search space and a seed for deterministic randomness.
	Initialize(sp *Space, seed int64)
	// Finalize is called once after exploration.
	Finalize()
	// GetNextBatch returns up to n configurations to evaluate next. An
	// empty batch ends exploration (technique exhausted).
	GetNextBatch(n int) []*Config
	// ReportCosts reports the evaluations of the most recent batch back
	// to the technique, in batch order. When exploration aborts mid-batch
	// only the evaluations that were committed are reported.
	ReportCosts(evals []Evaluation)
}

// CostOblivious marks a technique whose proposal sequence does not depend
// on reported costs: the configurations it returns are a function of the
// space and seed alone (exhaustive enumeration, seeded random sampling).
// The parallel engine may pipeline such techniques — draw and dispatch
// batch k+1 before batch k's costs are reported — without changing the
// proposal walk, so results stay bit-identical to the unpipelined run.
// Adaptive techniques (annealing, local search, OpenTuner) must not
// implement it.
type CostOblivious interface {
	// CostOblivious reports whether proposals ignore reported costs.
	CostOblivious() bool
}

// costOblivious reports whether bt is safe to pipeline, looking through
// the Batcher adapter at the wrapped sequential technique.
func costOblivious(bt BatchTechnique) bool {
	if b, ok := bt.(*Batcher); ok {
		co, ok := b.Tech.(CostOblivious)
		return ok && co.CostOblivious()
	}
	co, ok := bt.(CostOblivious)
	return ok && co.CostOblivious()
}

// Batcher adapts a sequential Technique to BatchTechnique. GetNextBatch
// draws up to n configurations through GetNextConfig without intermediate
// cost feedback, so for stateful techniques (annealing, local search) the
// batch is speculative: proposals 2..n are made as if the preceding
// proposals' costs were still unknown. ReportCosts then replays the costs
// in batch order through ReportCost, so the technique's state advances
// exactly as if the batch had been explored sequentially with delayed
// feedback. Stateless techniques (exhaustive, random) behave identically
// to their sequential runs.
type Batcher struct {
	Tech Technique

	exhausted bool
}

// AsBatch returns t's batched form: t itself when it already implements
// BatchTechnique, otherwise a Batcher adapter around it.
func AsBatch(t Technique) BatchTechnique {
	if bt, ok := t.(BatchTechnique); ok {
		return bt
	}
	return &Batcher{Tech: t}
}

// Initialize forwards to the wrapped technique.
func (b *Batcher) Initialize(sp *Space, seed int64) {
	b.exhausted = false
	b.Tech.Initialize(sp, seed)
}

// Finalize forwards to the wrapped technique.
func (b *Batcher) Finalize() { b.Tech.Finalize() }

// GetNextBatch draws up to n configurations from the wrapped technique. A
// nil configuration marks exhaustion; the partial batch is returned and all
// later batches are empty.
func (b *Batcher) GetNextBatch(n int) []*Config {
	if b.exhausted {
		return nil
	}
	batch := make([]*Config, 0, n)
	for len(batch) < n {
		cfg := b.Tech.GetNextConfig()
		if cfg == nil {
			b.exhausted = true
			break
		}
		batch = append(batch, cfg)
	}
	return batch
}

// ReportCosts replays the batch's costs through ReportCost in order.
func (b *Batcher) ReportCosts(evals []Evaluation) {
	for _, ev := range evals {
		b.Tech.ReportCost(ev.Cost)
	}
}
