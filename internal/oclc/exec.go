package oclc

import (
	"fmt"
	"sync"
)

// LaunchConfig is the NDRange of a kernel invocation. Unused dimensions
// must be 1.
type LaunchConfig struct {
	Global [3]int64
	Local  [3]int64
}

// NDRange1D builds a 1-D launch configuration.
func NDRange1D(global, local int64) LaunchConfig {
	return LaunchConfig{Global: [3]int64{global, 1, 1}, Local: [3]int64{local, 1, 1}}
}

// NDRange2D builds a 2-D launch configuration.
func NDRange2D(gx, gy, lx, ly int64) LaunchConfig {
	return LaunchConfig{Global: [3]int64{gx, gy, 1}, Local: [3]int64{lx, ly, 1}}
}

// Dims returns the number of used dimensions.
func (c LaunchConfig) Dims() int {
	d := 1
	if c.Global[1] > 1 || c.Local[1] > 1 {
		d = 2
	}
	if c.Global[2] > 1 || c.Local[2] > 1 {
		d = 3
	}
	return d
}

// WorkGroupSize returns the number of work-items per work-group.
func (c LaunchConfig) WorkGroupSize() int64 {
	return c.Local[0] * c.Local[1] * c.Local[2]
}

// NumGroups returns the total number of work-groups.
func (c LaunchConfig) NumGroups() int64 {
	return (c.Global[0] / c.Local[0]) * (c.Global[1] / c.Local[1]) * (c.Global[2] / c.Local[2])
}

// Validate enforces the OpenCL NDRange rules the paper's constraints deal
// with: positive sizes and local dividing global in every dimension.
func (c LaunchConfig) Validate() error {
	for d := 0; d < 3; d++ {
		if c.Global[d] <= 0 || c.Local[d] <= 0 {
			return fmt.Errorf("oclc: non-positive NDRange in dimension %d", d)
		}
		if c.Global[d]%c.Local[d] != 0 {
			return fmt.Errorf("oclc: local size %d does not divide global size %d in dimension %d (CL_INVALID_WORK_GROUP_SIZE)",
				c.Local[d], c.Global[d], d)
		}
	}
	return nil
}

// Arg is a kernel argument: a scalar or a buffer.
type Arg struct {
	Scalar *rvalExport
	Buf    *Memory
}

// rvalExport is the exported face of a scalar argument.
type rvalExport struct {
	Kind ValKind
	I    int64
	F    float64
}

// IntArg builds an integer scalar argument.
func IntArg(v int64) Arg { return Arg{Scalar: &rvalExport{Kind: KInt, I: v}} }

// FloatArg builds a floating scalar argument.
func FloatArg(v float64) Arg { return Arg{Scalar: &rvalExport{Kind: KFloat, F: v}} }

// BufArg wraps a buffer argument.
func BufArg(m *Memory) Arg { return Arg{Buf: m} }

// ExecOptions tunes a launch.
type ExecOptions struct {
	// SampleGroups, when positive, executes only the first N work-groups —
	// the profiling mode used during tuning, where the timing model
	// extrapolates to the full NDRange. Zero executes everything
	// (functional mode, used for correctness checks).
	SampleGroups int
	// RecordAccesses attaches an address log to the first executed
	// work-group for the coalescing analysis.
	RecordAccesses bool
	// Engine selects the execution engine for this launch; EngineDefault
	// uses the process default (SetDefaultEngine). A VM engine silently
	// falls back to the walker when the program has no bytecode (bare
	// Parse, or lowering bailed out).
	Engine Engine
}

// ExecResult is the outcome of a launch.
type ExecResult struct {
	// Counters aggregates the executed work-items' dynamic operations.
	Counters Counters
	// PerWI is Counters scaled down to one average work-item.
	GroupsExecuted int64
	WIsExecuted    int64
	// Log holds the first sampled work-group's global-access trace when
	// ExecOptions.RecordAccesses was set.
	Log *AccessLog
	// Divergent reports that some work-item skipped a barrier other
	// work-items entered (undefined behaviour in OpenCL; the simulator
	// releases the barrier and flags it).
	Divergent bool
	// LocalBytes is the largest per-work-group __local allocation seen;
	// the performance model derives occupancy limits from it.
	LocalBytes int64
}

// wgCtx is the shared state of one executing work-group.
type wgCtx struct {
	launch  LaunchConfig
	grp     [3]int64
	barrier *cyclicBarrier
	log     *AccessLog

	mu     sync.Mutex
	locals map[*VarDecl]*Memory
	nextID int
}

// localAlloc returns the work-group-shared allocation for a __local
// declaration, creating it on first use. All work-items of the group see
// the same memory, as on a real device.
func (g *wgCtx) localAlloc(d *VarDecl, elem ValKind, elemBytes int, n int64) (*Memory, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if m, ok := g.locals[d]; ok {
		if int64(len(m.Data)) != n {
			return nil, fmt.Errorf("oclc: __local %q allocated with differing sizes across work-items", d.Name)
		}
		return m, nil
	}
	g.nextID++
	m := &Memory{ID: 1<<20 + g.nextID, Space: SpaceLocal, Elem: elem, ElemBytes: elemBytes, Data: make([]float64, n)}
	g.locals[d] = m
	return m, nil
}

// LocalBytes reports the group's total __local allocation in bytes.
func (g *wgCtx) LocalBytes() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var b int64
	for _, m := range g.locals {
		b += int64(len(m.Data) * m.ElemBytes)
	}
	return b
}

// Launch executes a kernel over the NDRange. Work-items of a group run as
// goroutines synchronized by a cyclic barrier; groups run sequentially
// (the simulated clock, not host parallelism, models device concurrency).
func (p *Program) Launch(kernelName string, args []Arg, cfg LaunchConfig, opts ExecOptions) (*ExecResult, error) {
	fn, err := p.Kernel(kernelName)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(args) != len(fn.Params) {
		return nil, fmt.Errorf("oclc: kernel %q expects %d arguments, got %d", kernelName, len(fn.Params), len(args))
	}

	res := &ExecResult{}
	ngx := cfg.Global[0] / cfg.Local[0]
	ngy := cfg.Global[1] / cfg.Local[1]
	ngz := cfg.Global[2] / cfg.Local[2]
	total := ngx * ngy * ngz
	limit := total
	if opts.SampleGroups > 0 && int64(opts.SampleGroups) < total {
		limit = int64(opts.SampleGroups)
	}

	eng := opts.Engine.resolve()
	var vc *vmCode
	switch eng {
	case EngineVM, EngineVMVec:
		vc = fn.vm
	case EngineVMNoSpec:
		p.ensureNoSpec()
		vc = fn.vmNoSpec
	}

	// Per-group scratch is hoisted out of the group loop: the aggregation
	// buffers are reset and reused, so counter totals (and allocation
	// behaviour) are invariant in the number of work-groups.
	n := int(cfg.WorkGroupSize())
	counters := make([]Counters, n)
	errs := make([]error, n)
	var sched *vmScheduler
	if vc != nil {
		sched = newVMScheduler(p, fn, vc, eng, args, n)
		defer sched.release()
	}

	var localBytes, vmInstrs int64
	for g := int64(0); g < limit; g++ {
		gz := g / (ngx * ngy)
		gy := (g / ngx) % ngy
		gx := g % ngx
		wg := &wgCtx{
			launch: cfg,
			grp:    [3]int64{gx, gy, gz},
			locals: make(map[*VarDecl]*Memory),
		}
		if opts.RecordAccesses && g == 0 {
			wg.log = NewAccessLog(int(cfg.WorkGroupSize()))
			res.Log = wg.log
		}
		var divergent bool
		if sched != nil {
			var ic int64
			divergent, ic, err = sched.runGroup(wg, &res.Counters, counters, errs)
			vmInstrs += ic
		} else {
			divergent, err = p.runGroup(fn, args, wg, &res.Counters, counters, errs)
		}
		if err != nil {
			return nil, err
		}
		if divergent {
			res.Divergent = true
		}
		if b := wg.LocalBytes(); b > localBytes {
			localBytes = b
		}
		res.GroupsExecuted++
		res.WIsExecuted += cfg.WorkGroupSize()
	}
	res.LocalBytes = localBytes
	if vmInstrs > 0 {
		mVMInstructions.Add(uint64(vmInstrs))
	}
	return res, nil
}

// runGroup executes all work-items of one group on the tree-walking
// engine. counters and errs are caller-owned scratch of WorkGroupSize
// length, reset here.
func (p *Program) runGroup(fn *Function, args []Arg, wg *wgCtx, agg *Counters, counters []Counters, errs []error) (bool, error) {
	n := wg.launch.WorkGroupSize()
	wg.barrier = newCyclicBarrier(int(n))

	for i := int64(0); i < n; i++ {
		counters[i] = Counters{}
		errs[i] = nil
	}
	var done sync.WaitGroup
	lin := 0
	for lz := int64(0); lz < wg.launch.Local[2]; lz++ {
		for ly := int64(0); ly < wg.launch.Local[1]; ly++ {
			for lx := int64(0); lx < wg.launch.Local[0]; lx++ {
				w := &wiCtx{
					prog:  p,
					wg:    wg,
					frame: make([]rval, fn.NumSlots),
					ctr:   &counters[lin],
					lid:   [3]int64{lx, ly, lz},
					gid: [3]int64{
						wg.grp[0]*wg.launch.Local[0] + lx,
						wg.grp[1]*wg.launch.Local[1] + ly,
						wg.grp[2]*wg.launch.Local[2] + lz,
					},
					lin: lin,
				}
				for i, a := range args {
					w.frame[fn.Params[i].Slot] = argToRval(a)
				}
				done.Add(1)
				go func(w *wiCtx, slot int) {
					defer done.Done()
					defer wg.barrier.leave()
					defer func() {
						if r := recover(); r != nil {
							errs[slot] = fmt.Errorf("oclc: work-item panic: %v", r)
						}
					}()
					_, _, err := w.execStmt(fn.Body)
					errs[slot] = err
				}(w, lin)
				lin++
			}
		}
	}
	done.Wait()

	for _, err := range errs {
		if err != nil {
			return false, err
		}
	}
	for i := range counters {
		agg.Add(&counters[i])
	}
	return wg.barrier.divergent, nil
}

func argToRval(a Arg) rval {
	if a.Buf != nil {
		return rval{k: KPtr, mem: a.Buf}
	}
	if a.Scalar.Kind == KFloat {
		return floatVal(a.Scalar.F)
	}
	return intVal(a.Scalar.I)
}

// cyclicBarrier synchronizes the work-items of one group. A work-item
// that finishes execution leaves the barrier (reducing the participant
// count) so that divergent control flow degrades into a flagged release
// instead of a deadlock.
type cyclicBarrier struct {
	mu        sync.Mutex
	cond      *sync.Cond
	parties   int
	waiting   int
	gen       int
	divergent bool
}

func newCyclicBarrier(n int) *cyclicBarrier {
	b := &cyclicBarrier{parties: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all remaining participants arrive.
func (b *cyclicBarrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.waiting++
	if b.waiting >= b.parties {
		b.release()
		return
	}
	g := b.gen
	for g == b.gen {
		b.cond.Wait()
	}
}

// leave removes a finished work-item from the participant set, releasing
// the barrier if everyone else is already waiting (divergence).
func (b *cyclicBarrier) leave() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.parties--
	if b.parties > 0 && b.waiting >= b.parties {
		if b.waiting > 0 {
			b.divergent = true
		}
		b.release()
	}
}

// release opens the current generation; callers hold the lock.
func (b *cyclicBarrier) release() {
	b.waiting = 0
	b.gen++
	b.cond.Broadcast()
}
