// Package state is atfd's persistent warm-start store: a directory of
// small, versioned, checksummed blobs written crash-safely (tmp file +
// fsync + rename), holding state that is expensive to recompute but safe
// to lose — lazy-space censuses keyed by spec hash, the daemon-wide
// cost-outcome cache, and the compiled-kernel manifest. Every load verifies
// the magic header and a SHA-256 checksum of the payload; anything that
// fails verification reads as a miss, never as an error, so a corrupt or
// torn file only costs a cold start.
package state

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"atf/internal/obs"
)

// magic is the file format header; bumping it invalidates every persisted
// blob at once (format version 1).
const magic = "ATFSTATE1\n"

var (
	mSaves = obs.NewCounter("atf_state_save_total",
		"Warm-start state blobs written to the state directory")
	mSaveErrors = obs.NewCounter("atf_state_save_errors_total",
		"Warm-start state writes that failed")
	mLoads = obs.NewCounter("atf_state_load_total",
		"Warm-start state blobs loaded and verified from the state directory")
	mLoadErrors = obs.NewCounter("atf_state_load_errors_total",
		"Warm-start state loads that failed verification (missing, corrupt, or torn)")
)

// Store is a handle on one state directory. Methods are safe for
// concurrent use on distinct names; concurrent writers of the same name
// last-write-win atomically (rename never exposes a torn file).
type Store struct {
	dir string
}

// Open creates the state directory if needed and returns a store over it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("state: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("state: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// path maps a blob name to its file, sanitizing path separators so names
// derived from hashes or specs cannot escape the directory.
func (s *Store) path(name string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, name)
	if clean == "" {
		clean = "_"
	}
	return filepath.Join(s.dir, clean+".atfstate")
}

// Save atomically persists payload under name: the blob is written to a
// temporary file with its checksum header, fsynced, and renamed into
// place, so a crash at any point leaves either the old blob or the new one
// — never a torn mix.
func (s *Store) Save(name string, payload []byte) error {
	sum := sha256.Sum256(payload)
	path := s.path(name)
	tmp, err := os.CreateTemp(s.dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		mSaveErrors.Inc()
		return fmt.Errorf("state: save %s: %w", name, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	write := func() error {
		if _, err := tmp.WriteString(magic); err != nil {
			return err
		}
		if _, err := tmp.WriteString(hex.EncodeToString(sum[:]) + "\n"); err != nil {
			return err
		}
		if _, err := tmp.Write(payload); err != nil {
			return err
		}
		if err := tmp.Sync(); err != nil {
			return err
		}
		return tmp.Close()
	}
	if err := write(); err != nil {
		tmp.Close()
		mSaveErrors.Inc()
		return fmt.Errorf("state: save %s: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		mSaveErrors.Inc()
		return fmt.Errorf("state: save %s: %w", name, err)
	}
	mSaves.Inc()
	return nil
}

// Load reads and verifies the blob under name. ok is false — and the
// payload nil — when the blob is missing, has a foreign or outdated format
// header, or fails its checksum; verification failures are counted but
// deliberately not errors (a bad blob means a cold start, nothing more).
func (s *Store) Load(name string) (payload []byte, ok bool) {
	data, err := os.ReadFile(s.path(name))
	if err != nil {
		if !os.IsNotExist(err) {
			mLoadErrors.Inc()
		}
		return nil, false
	}
	rest, found := strings.CutPrefix(string(data), magic)
	if !found {
		mLoadErrors.Inc()
		return nil, false
	}
	sumHex, body, found := strings.Cut(rest, "\n")
	if !found || len(sumHex) != sha256.Size*2 {
		mLoadErrors.Inc()
		return nil, false
	}
	sum := sha256.Sum256([]byte(body))
	if hex.EncodeToString(sum[:]) != sumHex {
		mLoadErrors.Inc()
		return nil, false
	}
	mLoads.Inc()
	return []byte(body), true
}
