package oclc

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanicsOnMutations feeds the parser hundreds of randomly
// mutated kernels. Malformed input must produce an error (or, for benign
// mutations, a program) — never a panic and never a hang. This guards the
// tuning loop: a bad tuning configuration can produce arbitrary source
// after preprocessing, and the cost function must degrade to "infinite
// cost", not crash the tuner.
func TestParserNeverPanicsOnMutations(t *testing.T) {
	base := saxpyKernel + `
__kernel void extra(const int n, __global float* buf) {
  __local float tile[8][9];
  for (int i = 0; i < n; i += 2) {
    tile[i % 8][i % 9] = buf[i] * 2.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  buf[0] = tile[0][0];
}`
	rng := rand.New(rand.NewSource(1234))
	glyphs := []byte("{}()[];,+-*/%<>=!&|^~ .0123456789abcwxyz_#")

	for i := 0; i < 500; i++ {
		b := []byte(base)
		// Apply 1-5 random single-byte mutations.
		for m := 0; m < 1+rng.Intn(5); m++ {
			pos := rng.Intn(len(b))
			switch rng.Intn(3) {
			case 0: // replace
				b[pos] = glyphs[rng.Intn(len(glyphs))]
			case 1: // delete
				b = append(b[:pos], b[pos+1:]...)
			case 2: // insert
				b = append(b[:pos], append([]byte{glyphs[rng.Intn(len(glyphs))]}, b[pos:]...)...)
			}
		}
		src := string(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation %d: %v\nsource:\n%s", i, r, src)
				}
			}()
			prog, err := Compile(src, map[string]string{"WPT": "4"})
			if err != nil {
				return // graceful rejection
			}
			// If it compiled, a tiny launch must also not panic; runtime
			// errors are fine.
			for name, fn := range prog.Funcs {
				if !fn.Kernel || len(fn.Params) > 4 {
					continue
				}
				args := make([]Arg, len(fn.Params))
				for j, p := range fn.Params {
					if p.Type.Ptr {
						args[j] = BufArg(NewGlobalMemory(j+1, KFloat, 4, 64))
					} else {
						args[j] = IntArg(4)
					}
				}
				_, _ = prog.Launch(name, args, NDRange1D(4, 2), ExecOptions{})
			}
		}()
	}
}

// TestPreprocessorNeverPanicsOnMutations does the same for the macro pass.
func TestPreprocessorNeverPanicsOnMutations(t *testing.T) {
	base := "#define A 2\n#define B (A*A)\nint f() { return B + WPT; }\n#pragma unroll 4\n"
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		b := []byte(base)
		for m := 0; m < 1+rng.Intn(4); m++ {
			pos := rng.Intn(len(b))
			b[pos] = byte(32 + rng.Intn(95))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", string(b), r)
				}
			}()
			_, _ = Preprocess(string(b), map[string]string{"WPT": "8"})
		}()
	}
}

// TestDeepNestingNoStackBlowout guards the recursive-descent parser
// against pathological nesting depth.
func TestDeepNestingNoStackBlowout(t *testing.T) {
	depth := 2000
	src := "__kernel void k(__global int* o) { o[0] = " +
		strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth) + "; }"
	// Either parse successfully or error out; goroutine stacks grow, so
	// this should simply work.
	prog, err := Compile(src, nil)
	if err != nil {
		return
	}
	o := NewGlobalMemory(1, KInt, 4, 1)
	if _, err := prog.Launch("k", []Arg{BufArg(o)}, NDRange1D(1, 1), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if o.Data[0] != 1 {
		t.Fatal("deep nesting evaluated wrong")
	}
}
