package oclc

// Uniformity analysis for the lockstep-vectorized engine (vmvec.go).
//
// A value is *uniform* when every work-item of a work-group executing in
// lockstep from kernel entry is guaranteed to hold the same value in it; a
// branch on a uniform condition is taken the same way by all active lanes,
// so the vector engine can decide it once per group instead of checking
// per-lane agreement (and, on disagreement, scattering to scalar frames).
//
// The analysis is a conservative fixed point over variable slots. A slot
// becomes *varying* when any write to it either stores a varying value or
// happens under varying control (inside an if/loop/ternary arm whose
// condition is varying — after lanes re-converge at a barrier, such a slot
// can hold different values per lane even though every individual store
// looked uniform). Work-item IDs, memory loads, and user-function results
// are varying; group IDs, NDRange sizes, literals, and kernel parameters
// (host-provided scalars and buffer pointers) are uniform. Helper-function
// parameters are varying — call sites may pass lane-dependent values.
//
// Soundness over precision: a missed hint costs a per-lane agreement
// check; a wrong hint silently corrupts results. One construct defeats
// slot-level reasoning entirely: break/continue/return under varying
// control makes *iteration counts* lane-dependent, so a loop induction
// variable diverges without any of its stores being tainted. Any such
// statement marks the whole function tainted and suppresses every hint.

// uniBuiltins classifies builtin calls for the analysis: work-group-level
// queries are uniform when their arguments are; pure arithmetic builtins
// propagate their arguments' uniformity; anything else (work-item IDs,
// async copies, unknown names) is varying.
var uniBuiltins = map[string]bool{
	// group-level queries: uniform if args uniform
	"get_group_id": true, "get_global_size": true, "get_local_size": true,
	"get_num_groups": true, "get_work_dim": true,
	// pure arithmetic: uniform if args uniform
	"abs": true, "ceil": true, "clamp": true, "cos": true, "exp": true,
	"fabs": true, "floor": true, "fma": true, "fmod": true, "log": true,
	"mad": true, "max": true, "min": true, "pow": true, "round": true,
	"rsqrt": true, "sin": true, "sqrt": true, "tanh": true,
}

// uniScan holds the analysis state and, after analyzeUniform, the result
// the compiler queries through condUniform.
type uniScan struct {
	fn       *Function
	varying  []bool // per variable slot
	divDepth int    // nesting depth of varying control
	tainted  bool   // varying break/continue/return seen: no hints at all
	changed  bool
}

// analyzeUniform runs the fixed point for one function.
func analyzeUniform(fn *Function) *uniScan {
	u := &uniScan{fn: fn, varying: make([]bool, fn.NumSlots)}
	if !fn.Kernel {
		for _, p := range fn.Params {
			u.varying[p.Slot] = true
		}
	}
	// Each round can only flip slots monotonically false→true, so the
	// fixed point needs at most NumSlots+1 rounds.
	for i := 0; i <= fn.NumSlots; i++ {
		u.changed = false
		u.divDepth = 0
		u.walkStmt(fn.Body)
		if !u.changed {
			break
		}
	}
	return u
}

// condUniform reports whether a branch on cond may carry the brUniform
// hint. Safe to call during lowering: at the fixed point re-walking an
// expression mutates nothing.
func (u *uniScan) condUniform(cond Expr) bool {
	if u == nil || u.tainted || cond == nil {
		return false
	}
	return !u.walkExpr(cond)
}

// markWrite records a store to a slot: the slot becomes varying when the
// stored value is varying or the store happens under varying control.
func (u *uniScan) markWrite(slot int, valVarying bool) {
	if (valVarying || u.divDepth > 0) && !u.varying[slot] {
		u.varying[slot] = true
		u.changed = true
	}
}

func (u *uniScan) walkStmt(s Stmt) {
	switch st := s.(type) {
	case nil:
	case *Block:
		for _, sub := range st.Stmts {
			u.walkStmt(sub)
		}
	case *DeclStmt:
		for _, d := range st.Decls {
			for _, dim := range d.Dims {
				u.walkExpr(dim)
			}
			if len(d.Dims) > 0 {
				// Array slots hold pointers; branches never usefully test
				// them, so varying is the cheap safe answer.
				u.markWrite(d.Slot, true)
				continue
			}
			v := false
			if d.Init != nil {
				v = u.walkExpr(d.Init)
			}
			u.markWrite(d.Slot, v)
		}
	case *ExprStmt:
		u.walkExpr(st.X)
	case *If:
		cv := u.walkExpr(st.Cond)
		if cv {
			u.divDepth++
		}
		u.walkStmt(st.Then)
		u.walkStmt(st.Else)
		if cv {
			u.divDepth--
		}
	case *For:
		u.walkStmt(st.Init)
		cv := st.Cond != nil && u.walkExpr(st.Cond)
		if cv {
			u.divDepth++
		}
		u.walkStmt(st.Body)
		if st.Post != nil {
			u.walkExpr(st.Post)
		}
		if cv {
			u.divDepth--
		}
	case *While:
		cv := u.walkExpr(st.Cond)
		if cv {
			u.divDepth++
		}
		u.walkStmt(st.Body)
		if cv {
			u.divDepth--
		}
	case *Return:
		if st.X != nil {
			u.walkExpr(st.X)
		}
		if u.divDepth > 0 {
			u.tainted = true
		}
	case *BreakStmt:
		if u.divDepth > 0 {
			u.tainted = true
		}
	case *ContinueStmt:
		if u.divDepth > 0 {
			u.tainted = true
		}
	}
}

// walkExpr reports whether the expression's value is (possibly) varying,
// recording slot writes on the way.
func (u *uniScan) walkExpr(e Expr) bool {
	switch x := e.(type) {
	case *IntLit, *FloatLit:
		return false
	case *VarRef:
		return u.varying[x.Slot]
	case *Cast:
		return u.walkExpr(x.X)
	case *Unary:
		if x.Op == "++" || x.Op == "--" {
			if t, ok := x.X.(*VarRef); ok {
				// new = old ± 1: varying iff the slot already is, or the
				// increment happens under varying control.
				u.markWrite(t.Slot, u.varying[t.Slot])
				return u.varying[t.Slot]
			}
			u.walkExpr(x.X) // index operands; value comes from memory
			return true
		}
		return u.walkExpr(x.X)
	case *Binary:
		if x.Op == "&&" || x.Op == "||" {
			lv := u.walkExpr(x.L)
			if lv {
				// The right side only runs on lanes where the left side
				// did not short-circuit: conditional evaluation is
				// varying control for any writes inside it.
				u.divDepth++
			}
			rv := u.walkExpr(x.R)
			if lv {
				u.divDepth--
			}
			return lv || rv
		}
		lv := u.walkExpr(x.L)
		rv := u.walkExpr(x.R)
		return lv || rv
	case *Assign:
		v := u.walkExpr(x.Value)
		if t, ok := x.Target.(*VarRef); ok {
			if x.Op != "=" {
				v = v || u.varying[t.Slot] // compound: reads the old value
			}
			u.markWrite(t.Slot, v)
			return u.varying[t.Slot] || v
		}
		u.walkExpr(x.Target) // index operands; the store goes to memory
		return true
	case *Cond:
		cv := u.walkExpr(x.C)
		if cv {
			u.divDepth++
		}
		tv := u.walkExpr(x.T)
		fv := u.walkExpr(x.F)
		if cv {
			u.divDepth--
		}
		return cv || tv || fv
	case *Index:
		u.walkExpr(x.Base)
		for _, i := range x.Idx {
			u.walkExpr(i)
		}
		return true // memory contents are lane-dependent
	case *Call:
		v := false
		for _, a := range x.Args {
			if u.walkExpr(a) {
				v = true
			}
		}
		if _, builtin := builtins[x.Name]; builtin {
			if uniBuiltins[x.Name] {
				return v
			}
			return true // work-item IDs and side-effecting builtins
		}
		return true // user-function results are conservatively varying
	default:
		return true
	}
}
