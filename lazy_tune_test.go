package atf_test

import (
	"testing"

	"atf"
	"atf/internal/clblast"
)

// TestLazySpaceTuneUnderMemoryBudget is the end-to-end acceptance run of
// lazy streaming spaces: XgemmDirect with uncapped {1..1024} ranges — a
// raw Cartesian product beyond 10^19 — tuned for 1000 evaluations under a
// 256 MiB space-memory budget through the public Tuner surface. The
// techniques that sample the space by index (random search, simulated
// annealing) must complete with the expanded-slab residency never
// exceeding the budget.
func TestLazySpaceTuneUnderMemoryBudget(t *testing.T) {
	const budget = 256 << 20
	params := clblast.XgemmDirectParams(clblast.SpaceOptions{
		RangeCap: 1024, DivisorHints: true,
	})
	cf := atf.CostFunc(func(c *atf.Config) (atf.Cost, error) {
		// A cheap synthetic objective: the space, not the evaluator, is
		// under test here.
		return atf.Cost{float64(c.Int("WGD") * c.Int("KWID"))}, nil
	})
	for _, tc := range []struct {
		name string
		tech atf.Technique
	}{
		{"random", atf.RandomSearch()},
		{"annealing", atf.SimulatedAnnealing()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tuner := atf.Tuner{
				Technique:     tc.tech,
				Abort:         atf.Evaluations(1000),
				Seed:          7,
				MaxSpaceBytes: budget,
			}
			space, err := tuner.GenerateSpace(atf.G(params...))
			if err != nil {
				t.Fatal(err)
			}
			if space.LazyGroups() != 1 {
				t.Fatal("uncapped XgemmDirect must auto-select lazy construction")
			}
			res, err := tuner.Explore(space, cf)
			if err != nil {
				t.Fatal(err)
			}
			if res.Evaluations != 1000 {
				t.Fatalf("evaluations = %d, want 1000", res.Evaluations)
			}
			if res.Best == nil {
				t.Fatal("no best configuration found")
			}
			if !clblast.ValidateConfig(res.Best, params) {
				t.Fatalf("best %v violates the constraint chain", res.Best)
			}
			expansions, _, resident := space.LazyStats()
			if expansions == 0 {
				t.Error("exploration should have expanded sibling blocks")
			}
			if resident > budget {
				t.Errorf("resident slab bytes %d exceed the %d budget", resident, budget)
			}
			t.Logf("%s: size=%d raw=%s best=%v expansions=%d resident=%dB",
				tc.name, space.Size(), space.RawSize(), res.Best, expansions, resident)
		})
	}
}
