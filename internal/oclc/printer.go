package oclc

import (
	"fmt"
	"strings"
)

// Dump renders the parsed program back to OpenCL-C-like source. Round-
// tripping the AST is the cheapest way to see exactly what the kernel
// looks like *after* tuning-parameter substitution — the analogue of
// inspecting a real implementation's build log — and the printer output
// re-parses to an equivalent program (tested).
func (p *Program) Dump() string {
	var b strings.Builder
	// Deterministic order: kernels last, helpers first, both sorted.
	var names []string
	for n := range p.Funcs {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		if !p.Funcs[n].Kernel {
			printFunc(&b, p.Funcs[n])
		}
	}
	for _, n := range names {
		if p.Funcs[n].Kernel {
			printFunc(&b, p.Funcs[n])
		}
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func printFunc(b *strings.Builder, f *Function) {
	if f.Kernel {
		b.WriteString("__kernel ")
	}
	fmt.Fprintf(b, "%s %s(", typeString(f.Ret), f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %s", typeString(p.Type), p.Name)
	}
	b.WriteString(") ")
	printStmt(b, f.Body, 0)
	b.WriteString("\n")
}

func typeString(t Type) string {
	base := ""
	switch t.Kind {
	case KVoid:
		base = "void"
	case KInt:
		base = "int"
	case KFloat:
		base = "float"
	case KBool:
		base = "bool"
	default:
		base = "?"
	}
	prefix := ""
	switch t.Space {
	case SpaceGlobal:
		prefix = "__global "
	case SpaceLocal:
		prefix = "__local "
	}
	if t.Ptr {
		return prefix + base + "*"
	}
	return prefix + base
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	switch st := s.(type) {
	case *Block:
		b.WriteString("{\n")
		for _, sub := range st.Stmts {
			indent(b, depth+1)
			printStmt(b, sub, depth+1)
			b.WriteString("\n")
		}
		indent(b, depth)
		b.WriteString("}")
	case *DeclStmt:
		for i, d := range st.Decls {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(b, "%s %s", typeString(d.Type), d.Name)
			for _, dim := range d.Dims {
				b.WriteString("[")
				printExpr(b, dim)
				b.WriteString("]")
			}
			if d.Init != nil {
				b.WriteString(" = ")
				printExpr(b, d.Init)
			}
			b.WriteString(";")
		}
	case *ExprStmt:
		printExpr(b, st.X)
		b.WriteString(";")
	case *If:
		b.WriteString("if (")
		printExpr(b, st.Cond)
		b.WriteString(") ")
		printStmt(b, st.Then, depth)
		if st.Else != nil {
			b.WriteString(" else ")
			printStmt(b, st.Else, depth)
		}
	case *For:
		if st.Unroll != 0 {
			if st.Unroll > 0 {
				fmt.Fprintf(b, "#pragma unroll %d\n", st.Unroll)
			} else {
				b.WriteString("#pragma unroll\n")
			}
			indent(b, depth)
		}
		b.WriteString("for (")
		if st.Init != nil {
			printStmt(b, st.Init, depth)
		} else {
			b.WriteString(";")
		}
		b.WriteString(" ")
		if st.Cond != nil {
			printExpr(b, st.Cond)
		}
		b.WriteString("; ")
		if st.Post != nil {
			printExpr(b, st.Post)
		}
		b.WriteString(") ")
		printStmt(b, st.Body, depth)
	case *While:
		b.WriteString("while (")
		printExpr(b, st.Cond)
		b.WriteString(") ")
		printStmt(b, st.Body, depth)
	case *Return:
		b.WriteString("return")
		if st.X != nil {
			b.WriteString(" ")
			printExpr(b, st.X)
		}
		b.WriteString(";")
	case *BreakStmt:
		b.WriteString("break;")
	case *ContinueStmt:
		b.WriteString("continue;")
	default:
		fmt.Fprintf(b, "/* ? %T */", s)
	}
}

func printExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *IntLit:
		fmt.Fprintf(b, "%d", x.V)
	case *FloatLit:
		s := fmt.Sprintf("%g", x.V)
		if !strings.ContainsAny(s, ".e") {
			s += ".0"
		}
		fmt.Fprintf(b, "%sf", s)
	case *VarRef:
		b.WriteString(x.Name)
	case *Unary:
		if x.Postfix {
			printExpr(b, x.X)
			b.WriteString(x.Op)
		} else {
			b.WriteString(x.Op)
			b.WriteString("(")
			printExpr(b, x.X)
			b.WriteString(")")
		}
	case *Binary:
		b.WriteString("(")
		printExpr(b, x.L)
		fmt.Fprintf(b, " %s ", x.Op)
		printExpr(b, x.R)
		b.WriteString(")")
	case *Assign:
		printExpr(b, x.Target)
		fmt.Fprintf(b, " %s ", x.Op)
		printExpr(b, x.Value)
	case *Cond:
		b.WriteString("(")
		printExpr(b, x.C)
		b.WriteString(" ? ")
		printExpr(b, x.T)
		b.WriteString(" : ")
		printExpr(b, x.F)
		b.WriteString(")")
	case *Call:
		b.WriteString(x.Name)
		b.WriteString("(")
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, a)
		}
		b.WriteString(")")
	case *Index:
		printExpr(b, x.Base)
		for _, idx := range x.Idx {
			b.WriteString("[")
			printExpr(b, idx)
			b.WriteString("]")
		}
	case *Cast:
		fmt.Fprintf(b, "(%s)(", typeString(x.To))
		printExpr(b, x.X)
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "/* ? %T */", e)
	}
}
